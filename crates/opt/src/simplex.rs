//! Two-phase primal simplex for small-to-medium dense linear programs.
//!
//! Solves the YARN-tuning LP of §5.2 (Equations 7–10). The paper used a
//! commercial solver; KEA's per-cluster LPs have one decision variable
//! per SC-SKU group plus a few dozen guard-rail constraints, but the
//! fleet-scale sweep solves one LP per operating point with `G` in the
//! hundreds, so the solver matters.
//!
//! Two implementations share the [`LpProblem`] front end:
//!
//! * The default ([`LpProblem::solve`] / [`LpProblem::solve_warm`]) is a
//!   **bounded-variable** primal simplex: per-variable bounds
//!   `lo ≤ x ≤ hi` are carried as variable *status*
//!   (basic / nonbasic-at-lower / nonbasic-at-upper) rather than
//!   materialised as tableau rows, so a `G`-variable box-constrained LP
//!   has a tableau of `m` guard-rail rows instead of `m + G` — the
//!   tableau work per pivot drops from O((m+G)·(n+m+G)) to O(m·(n+m)).
//!   [`LpProblem::solve_warm`] additionally accepts the optimal
//!   [`Basis`] of a previous solve and re-solves a *re-costed* instance
//!   (same shape, perturbed coefficients) starting from that basis,
//!   which is how the optimizer sweeps operating points cheaply.
//! * [`reference`] preserves the original row-materialising solver as an
//!   executable specification: property tests pin the two to 1e-9
//!   agreement on randomized LPs, and `kea-bench`'s `optimizer_scale`
//!   measures the gap at fleet-scale `G`.
//!
//! Supported form (both implementations):
//!
//! * maximize or minimize `c·x`
//! * constraints `a·x ≤ / ≥ / = b`
//! * per-variable bounds `lo ≤ x ≤ hi` (default `0 ≤ x`)
//!
//! Numerical-robustness notes (the LP-path burn-down):
//!
//! * The leaving-row ratio test tracks the *exact* minimum ratio and
//!   applies Bland's smallest-index tie-break only to exactly tied
//!   ratios. An ε-window tie-break (the previous behaviour) can replace
//!   a strictly smaller ratio with one up to ε larger, which drives a
//!   basic variable negative by ε amplified by the pivot column's
//!   magnitude.
//! * Phase-1 artificial drive-out pivots on the *largest-magnitude*
//!   eligible entry, never the first `> ε` one: a near-ε pivot divides
//!   the whole row by that entry and amplifies any accumulated rounding
//!   residual by up to 1/ε.
//! * The phase-1 feasibility verdict compares the artificial objective
//!   against a tolerance *relative to the right-hand-side scale*; an
//!   absolute `1e-7` misclassifies feasible fleet-scale systems (rhs
//!   ~10⁹ and beyond) whose phase-1 residual is pure rounding dust.

// kea-lint: allow-file(index-in-library) — dense tableau kernel; all indices are bounded by the tableau dimensions fixed at construction

use crate::error::OptError;

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sense {
    Maximize,
    Minimize,
}

/// A linear program under construction. Builder-style:
///
/// ```
/// use kea_opt::{LpProblem, Relation};
/// // maximize 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → (4, 0), obj 12.
/// let sol = LpProblem::maximize(vec![3.0, 2.0])
///     .constraint(vec![1.0, 1.0], Relation::Le, 4.0).unwrap()
///     .constraint(vec![1.0, 3.0], Relation::Le, 6.0).unwrap()
///     .solve().unwrap();
/// assert!((sol.objective - 12.0).abs() < 1e-9);
/// assert!((sol.x[0] - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    objective: Vec<f64>,
    sense: Sense,
    constraints: Vec<Constraint>,
    lower: Vec<f64>,
    upper: Vec<Option<f64>>,
}

/// Optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable assignment (in original, unshifted coordinates).
    pub x: Vec<f64>,
    /// Optimal objective value (in the original sense).
    pub objective: f64,
}

/// The optimal basis of a solved LP, reusable to warm-start a re-solve.
///
/// Records which columns (structurals then row slacks) were basic and
/// which nonbasic columns sat at their *upper* bound at the optimum.
/// [`LpProblem::solve_warm`] rebuilds the tableau of a same-shaped
/// instance directly in this basis — skipping phase 1 and, when the
/// coefficients moved only slightly, most phase-2 pivots. A basis whose
/// shape does not match the new instance (or that is singular/infeasible
/// for it) is silently discarded and the solve falls back to a cold
/// start, so warm-starting is always safe.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// Basic column per tableau row (structurals `0..n`, slacks `n..n+m`).
    basic: Vec<usize>,
    /// Nonbasic columns that finished at their (finite) upper bound.
    at_upper: Vec<usize>,
    /// Structural-variable count the basis was produced for.
    n_vars: usize,
    /// Constraint-row count the basis was produced for.
    n_rows: usize,
}

/// Pivot / reduced-cost tolerance.
const EPS: f64 = 1e-9;

/// Phase-1 feasibility tolerance, *relative* to the rhs scale.
const FEAS_REL: f64 = 1e-7;

/// Consecutive degenerate pivots before switching from Dantzig to
/// Bland's anti-cycling entering rule.
const DEGENERATE_STREAK_LIMIT: usize = 64;

impl LpProblem {
    /// Starts a maximization problem with the given objective coefficients.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Self::new(objective, Sense::Maximize)
    }

    /// Starts a minimization problem with the given objective coefficients.
    pub fn minimize(objective: Vec<f64>) -> Self {
        Self::new(objective, Sense::Minimize)
    }

    fn new(objective: Vec<f64>, sense: Sense) -> Self {
        let n = objective.len();
        LpProblem {
            objective,
            sense,
            constraints: Vec::new(),
            lower: vec![0.0; n],
            upper: vec![None; n],
        }
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds a constraint `coeffs · x (relation) rhs`.
    ///
    /// # Errors
    /// `coeffs` must have one entry per variable and all values finite.
    pub fn constraint(
        mut self,
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    ) -> Result<Self, OptError> {
        if coeffs.len() != self.n_vars() {
            return Err(OptError::DimensionMismatch {
                expected: self.n_vars(),
                actual: coeffs.len(),
            });
        }
        if coeffs.iter().any(|v| !v.is_finite()) || !rhs.is_finite() {
            return Err(OptError::NonFiniteInput);
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        Ok(self)
    }

    /// Sets bounds `lo ≤ x_i ≤ hi` for variable `i` (`hi = None` means
    /// unbounded above). Defaults are `0 ≤ x_i`.
    ///
    /// # Errors
    /// `i` must index a variable and `lo ≤ hi` when `hi` is given.
    pub fn bounds(mut self, i: usize, lo: f64, hi: Option<f64>) -> Result<Self, OptError> {
        if i >= self.n_vars() {
            return Err(OptError::DimensionMismatch {
                expected: self.n_vars(),
                actual: i + 1,
            });
        }
        if !lo.is_finite() || hi.is_some_and(|h| !h.is_finite()) {
            return Err(OptError::NonFiniteInput);
        }
        if let Some(h) = hi {
            if h < lo {
                return Err(OptError::InvalidParameter("upper bound below lower bound"));
            }
        }
        self.lower[i] = lo;
        self.upper[i] = hi;
        Ok(self)
    }

    fn validate(&self) -> Result<(), OptError> {
        if self.objective.is_empty() {
            return Err(OptError::InvalidParameter("objective must be non-empty"));
        }
        if self.objective.iter().any(|v| !v.is_finite()) {
            return Err(OptError::NonFiniteInput);
        }
        Ok(())
    }

    /// Solves the program with the bounded-variable simplex.
    ///
    /// # Errors
    /// [`OptError::Infeasible`] or [`OptError::Unbounded`] for degenerate
    /// programs; [`OptError::NonFiniteInput`] if the objective contains
    /// NaN/inf; [`OptError::InvalidParameter`] for an empty objective.
    pub fn solve(&self) -> Result<LpSolution, OptError> {
        self.solve_warm(None).map(|(sol, _)| sol)
    }

    /// Solves the program, optionally warm-starting from the optimal
    /// [`Basis`] of a previous solve, and returns this solve's optimal
    /// basis alongside the solution.
    ///
    /// The warm basis is only *advisory*: a basis whose shape does not
    /// match this instance, or that turns out singular or primal
    /// infeasible for the new coefficients, is discarded and the solve
    /// restarts cold. The result is therefore always the same optimum a
    /// cold [`solve`](Self::solve) would return — warm-starting changes
    /// the iteration count, not the answer.
    ///
    /// # Errors
    /// Same conditions as [`solve`](Self::solve).
    pub fn solve_warm(&self, warm: Option<&Basis>) -> Result<(LpSolution, Basis), OptError> {
        self.validate()?;
        let form = BoundedForm::build(self);
        if let Some(basis) = warm {
            if let Some(result) = form.solve_from_basis(self, basis)? {
                return Ok(result);
            }
        }
        form.solve_cold(self)
    }
}

/// The shifted, rhs-sign-normalized equality form a bounded-variable
/// solve works on: `A·x' + S·s = b'` with `0 ≤ x'_j ≤ U_j` and slacks
/// `s_i ∈ [0, U_{n+i}]` (`U = ∞` for Le/Ge slacks, `0` for Eq slacks —
/// an Eq slack is a permanently-fixed dummy so slack `i` ↔ row `i`
/// indexing holds uniformly).
struct BoundedForm {
    n: usize,
    m: usize,
    /// Structural coefficients per row, sign-normalized.
    rows: Vec<Vec<f64>>,
    /// Slack coefficient per row: `+1` (Le, Eq-dummy) or `-1` (Ge surplus).
    slack_sign: Vec<f64>,
    /// Normalized rhs per row (`≥ 0`).
    rhs: Vec<f64>,
    /// Rows that need a phase-1 artificial (Ge/Eq after normalization).
    needs_artificial: Vec<bool>,
    /// Working upper bound per structural+slack column (∞ if unbounded).
    upper: Vec<f64>,
    /// Objective in "maximize" convention over the *shifted* structurals.
    obj: Vec<f64>,
    /// `1 + max |b'|`, the scale the phase-1 feasibility verdict is
    /// relative to.
    rhs_scale: f64,
}

impl BoundedForm {
    fn build(p: &LpProblem) -> BoundedForm {
        let n = p.n_vars();
        let m = p.constraints.len();
        let mut rows = Vec::with_capacity(m);
        let mut slack_sign = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut needs_artificial = Vec::with_capacity(m);
        let mut rhs_scale = 1.0f64;
        for c in &p.constraints {
            // Shift every variable's lower bound to zero: x = x' + lo.
            let shift: f64 = c.coeffs.iter().zip(&p.lower).map(|(a, l)| a * l).sum();
            let mut coeffs = c.coeffs.clone();
            let mut b = c.rhs - shift;
            let mut rel = c.relation;
            if b < 0.0 {
                for v in &mut coeffs {
                    *v = -*v;
                }
                b = -b;
                rel = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            rhs_scale = rhs_scale.max(1.0 + b.abs());
            rows.push(coeffs);
            rhs.push(b);
            slack_sign.push(if rel == Relation::Ge { -1.0 } else { 1.0 });
            needs_artificial.push(rel != Relation::Le);
        }
        let mut upper = Vec::with_capacity(n + m);
        for i in 0..n {
            upper.push(match p.upper[i] {
                Some(hi) => hi - p.lower[i],
                None => f64::INFINITY,
            });
        }
        for c in &p.constraints {
            upper.push(if c.relation == Relation::Eq {
                0.0
            } else {
                f64::INFINITY
            });
        }
        let obj: Vec<f64> = match p.sense {
            Sense::Maximize => p.objective.clone(),
            Sense::Minimize => p.objective.iter().map(|v| -v).collect(),
        };
        BoundedForm {
            n,
            m,
            rows,
            slack_sign,
            rhs,
            needs_artificial,
            upper,
            obj,
            rhs_scale,
        }
    }

    /// Columns that exist outside phase 1 (structurals + slacks).
    fn n_real(&self) -> usize {
        self.n + self.m
    }

    /// A tableau over `n_cols` columns (`≥ n_real`; the excess columns
    /// are phase-1 artificials) with structural/slack data filled in and
    /// everything nonbasic at lower.
    fn raw_tableau(&self, n_cols: usize) -> Tableau {
        let width = n_cols + 1;
        let mut t = vec![0.0; (self.m + 1) * width];
        for (r, coeffs) in self.rows.iter().enumerate() {
            for (c, &v) in coeffs.iter().enumerate() {
                t[r * width + c] = v;
            }
            t[r * width + self.n + r] = self.slack_sign[r];
            t[r * width + n_cols] = self.rhs[r];
        }
        let mut upper = self.upper.clone();
        upper.resize(n_cols, f64::INFINITY);
        Tableau {
            t,
            m: self.m,
            width,
            basis: vec![0; self.m],
            upper,
            flipped: vec![false; n_cols],
        }
    }

    /// Cold start: phase 1 with artificials where the slack cannot open
    /// the row, then phase 2.
    fn solve_cold(&self, p: &LpProblem) -> Result<(LpSolution, Basis), OptError> {
        let n_art = self.needs_artificial.iter().filter(|&&a| a).count();
        let n_cols = self.n_real() + n_art;
        let mut tab = self.raw_tableau(n_cols);
        let mut art_idx = self.n_real();
        let mut artificials = Vec::with_capacity(n_art);
        for r in 0..self.m {
            if self.needs_artificial[r] {
                tab.t[r * tab.width + art_idx] = 1.0;
                tab.basis[r] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            } else {
                tab.basis[r] = self.n + r;
            }
        }

        if !artificials.is_empty() {
            // Phase 1: minimize Σ artificials ⇒ maximize −Σ artificials.
            // Objective-row convention (matches phase 2): the row starts
            // at −c and basic columns are priced out; c_artificial = −1,
            // so the row starts at +1 on artificial columns.
            let ow = tab.m * tab.width;
            for &a in &artificials {
                tab.t[ow + a] = 1.0;
            }
            for r in 0..self.m {
                if tab.basis[r] >= self.n_real() {
                    for c in 0..tab.width {
                        tab.t[ow + c] -= tab.t[r * tab.width + c];
                    }
                }
            }
            tab.run()?;
            // At optimum the stored value is z = −Σ artificials ≤ 0;
            // feasible iff it reaches zero *relative to the rhs scale* —
            // an absolute threshold misreads rounding dust as
            // infeasibility once |b| is large.
            let phase1_obj = tab.t[ow + n_cols];
            if phase1_obj.abs() > FEAS_REL * self.rhs_scale {
                return Err(OptError::Infeasible);
            }
            // Drive any artificial still in the basis out (degenerate
            // case), pivoting on the largest-magnitude eligible entry:
            // a near-EPS pivot would amplify the row's rounding residual
            // by up to 1/EPS.
            for r in 0..self.m {
                if tab.basis[r] >= self.n_real() {
                    let mut best: Option<(usize, f64)> = None;
                    for c in 0..self.n_real() {
                        let a = tab.t[r * tab.width + c].abs();
                        if a > EPS && best.is_none_or(|(_, ba)| a > ba) {
                            best = Some((c, a));
                        }
                    }
                    if let Some((c, _)) = best {
                        tab.pivot(r, c);
                    }
                    // If none exists the row is all-zero and harmless.
                }
            }
            // Zero the phase-1 objective row and retire the artificial
            // columns (zero entries, zero upper so they can never
            // re-enter).
            for c in 0..tab.width {
                tab.t[ow + c] = 0.0;
            }
            for &a in &artificials {
                for r in 0..self.m {
                    tab.t[r * tab.width + a] = 0.0;
                }
                tab.upper[a] = 0.0;
            }
        }

        self.finish(p, tab)
    }

    /// Warm start: rebuild the tableau directly in `basis`. Returns
    /// `Ok(None)` when the basis does not fit this instance (shape
    /// mismatch, singular, or primal infeasible) — the caller then solves
    /// cold.
    fn solve_from_basis(
        &self,
        p: &LpProblem,
        basis: &Basis,
    ) -> Result<Option<(LpSolution, Basis)>, OptError> {
        if basis.n_vars != self.n
            || basis.n_rows != self.m
            || basis.basic.len() != self.m
        {
            return Ok(None);
        }
        let n_real = self.n_real();
        let mut seen = vec![false; n_real];
        for &c in &basis.basic {
            // Reject out-of-range or duplicated columns, and Eq-slack
            // dummies (zero working range, must stay nonbasic).
            if c >= n_real || seen[c] || (c >= self.n && self.upper[c] == 0.0) {
                return Ok(None);
            }
            seen[c] = true;
        }
        for &c in &basis.at_upper {
            if c >= n_real || seen[c] || !self.upper[c].is_finite() {
                return Ok(None);
            }
        }

        let mut tab = self.raw_tableau(n_real);
        for &c in &basis.at_upper {
            tab.flip_nonbasic(c);
        }
        // Gaussian elimination into the basis, choosing for every basis
        // column the largest-magnitude pivot among still-unassigned rows.
        let mut used = vec![false; self.m];
        for &col in &basis.basic {
            let mut best: Option<(usize, f64)> = None;
            for (r, &taken) in used.iter().enumerate() {
                if !taken {
                    let a = tab.t[r * tab.width + col].abs();
                    if best.is_none_or(|(_, ba)| a > ba) {
                        best = Some((r, a));
                    }
                }
            }
            let Some((r, a)) = best else {
                return Ok(None);
            };
            if a <= EPS {
                return Ok(None); // Singular for the new coefficients.
            }
            tab.pivot(r, col);
            used[r] = true;
        }
        // Primal feasibility of the reconstructed vertex: every basic
        // value within its (working) bounds, up to rhs-relative dust.
        let ftol = FEAS_REL * self.rhs_scale;
        for r in 0..self.m {
            let v = tab.t[r * tab.width + n_real];
            if v < -ftol || v > tab.upper[tab.basis[r]] + ftol {
                return Ok(None);
            }
        }
        self.finish(p, tab).map(Some)
    }

    /// Installs the phase-2 objective on a primal-feasible tableau, runs
    /// the bounded simplex, and extracts solution + basis.
    fn finish(&self, p: &LpProblem, mut tab: Tableau) -> Result<(LpSolution, Basis), OptError> {
        // Objective row in *working* coordinates: a flipped column j
        // (x'_j = U_j − x̄_j) contributes −c_j to the working objective,
        // so its row entry (−c_j by convention) negates.
        let ow = tab.m * tab.width;
        for c in 0..tab.width {
            tab.t[ow + c] = 0.0;
        }
        for (j, &c) in self.obj.iter().enumerate() {
            tab.t[ow + j] = if tab.flipped[j] { c } else { -c };
        }
        for r in 0..self.m {
            let b = tab.basis[r];
            let coeff = tab.t[ow + b];
            if coeff != 0.0 {
                for c in 0..tab.width {
                    tab.t[ow + c] -= coeff * tab.t[r * tab.width + c];
                }
            }
        }
        tab.run()?;

        // Working values → shifted values → original coordinates.
        let n_real = self.n_real();
        let mut working = vec![0.0; n_real];
        let mut is_basic = vec![false; tab.upper.len()];
        for r in 0..self.m {
            if tab.basis[r] < n_real {
                working[tab.basis[r]] = tab.t[r * tab.width + tab.width - 1];
            }
            is_basic[tab.basis[r]] = true;
        }
        let x: Vec<f64> = (0..self.n)
            .map(|j| {
                let w = if tab.flipped[j] {
                    tab.upper[j] - working[j]
                } else {
                    working[j]
                };
                w + p.lower[j]
            })
            .collect();
        let objective: f64 = p.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
        let basis = Basis {
            basic: tab.basis.clone(),
            at_upper: (0..n_real)
                .filter(|&j| !is_basic[j] && tab.flipped[j])
                .collect(),
            n_vars: self.n,
            n_rows: self.m,
        };
        Ok((LpSolution { x, objective }, basis))
    }
}

/// Dense bounded-variable tableau.
///
/// Row `m` is the objective row (reduced costs; rhs column tracks the
/// running objective value), rows `0..m` hold the constraint system in
/// current-basis coordinates with the rhs column equal to the basic
/// variables' *working* values. A column with `flipped[j]` set stands
/// for the substituted variable `x̄_j = U_j − x'_j`, so every nonbasic
/// column sits at working value 0 and entering variables always
/// increase — upper bounds then cost a column negation instead of a row.
struct Tableau {
    t: Vec<f64>,
    m: usize,
    width: usize,
    basis: Vec<usize>,
    upper: Vec<f64>,
    flipped: Vec<bool>,
}

/// Outcome of one ratio test.
enum Step {
    /// The entering column hits its own opposite bound first: no basis
    /// change, just a substitution flip.
    BoundFlip,
    /// Pivot at `(row, col)`; `at_upper` means the leaving variable exits
    /// at its upper bound. `delta` is the entering variable's travel
    /// (used for degeneracy tracking).
    Pivot {
        row: usize,
        at_upper: bool,
        delta: f64,
    },
    /// No limit in the entering direction.
    Unbounded,
}

impl Tableau {
    /// Runs bounded primal simplex iterations until no nonbasic column
    /// has a favorable reduced cost. Entering rule: Dantzig (most
    /// negative), demoted to Bland's smallest-index rule after a run of
    /// degenerate pivots; leaving rule: exact minimum ratio with Bland's
    /// smallest-basis-index break on *exact* ties only.
    fn run(&mut self) -> Result<(), OptError> {
        let total = self.width - 1;
        // Generous cap: Bland's rule guarantees termination, this guards
        // against numerical live-lock.
        let cap = 10_000usize.max(64 * (total + self.m));
        let mut degenerate_streak = 0usize;
        let mut bland = false;
        for _ in 0..cap {
            let Some(col) = self.entering(bland) else {
                return Ok(());
            };
            match self.ratio_test(col) {
                Step::Unbounded => return Err(OptError::Unbounded),
                Step::BoundFlip => {
                    // Strict objective progress (reduced cost < −EPS over
                    // a positive travel), so flips cannot cycle.
                    self.flip_nonbasic(col);
                    degenerate_streak = 0;
                    bland = false;
                }
                Step::Pivot {
                    row,
                    at_upper,
                    delta,
                } => {
                    if at_upper {
                        self.flip_basic_row(row);
                    }
                    self.pivot(row, col);
                    if delta.abs() <= EPS {
                        degenerate_streak += 1;
                        if degenerate_streak > DEGENERATE_STREAK_LIMIT {
                            bland = true;
                        }
                    } else {
                        degenerate_streak = 0;
                        bland = false;
                    }
                }
            }
        }
        Err(OptError::InvalidParameter(
            "simplex iteration limit exceeded (numerical issue)",
        ))
    }

    /// Entering column, or `None` at optimality. Columns with a zero
    /// working range (fixed variables, retired artificials) never enter.
    fn entering(&self, bland: bool) -> Option<usize> {
        let total = self.width - 1;
        let ow = self.m * self.width;
        let mut best: Option<(usize, f64)> = None;
        for c in 0..total {
            let d = self.t[ow + c];
            if d < -EPS && self.upper[c] > 0.0 {
                if bland {
                    return Some(c);
                }
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((c, d));
                }
            }
        }
        best.map(|(c, _)| c)
    }

    /// Bounded ratio test for entering column `col` (travel `t ≥ 0` in
    /// working coordinates): the entering variable stops at its own
    /// upper bound, a basic variable drops to its lower bound (positive
    /// column entry), or a basic variable climbs to its upper bound
    /// (negative entry, finite upper).
    fn ratio_test(&self, col: usize) -> Step {
        let total = self.width - 1;
        let mut leave: Option<(usize, bool)> = None;
        let mut leave_ratio = f64::INFINITY;
        for r in 0..self.m {
            let a = self.t[r * self.width + col];
            let v = self.t[r * self.width + total];
            let (ratio, at_upper) = if a > EPS {
                (v / a, false)
            } else if a < -EPS {
                let ub = self.upper[self.basis[r]];
                if !ub.is_finite() {
                    continue;
                }
                ((ub - v) / (-a), true)
            } else {
                continue;
            };
            // Exact minimum; Bland's smallest-basis-index rule breaks
            // *exact* ties only. An ε-window here can prefer a strictly
            // larger ratio and push the true minimum's basic variable
            // out of bounds by ε × (column magnitude).
            let replace = match leave {
                None => true,
                Some((br, _)) => {
                    ratio < leave_ratio
                        || (ratio == leave_ratio && self.basis[r] < self.basis[br])
                }
            };
            if replace {
                leave = Some((r, at_upper));
                leave_ratio = ratio;
            }
        }
        let bound = self.upper[col];
        if bound <= leave_ratio {
            if bound.is_finite() {
                Step::BoundFlip
            } else {
                Step::Unbounded
            }
        } else {
            match leave {
                Some((row, at_upper)) => Step::Pivot {
                    row,
                    at_upper,
                    delta: leave_ratio,
                },
                None => Step::Unbounded,
            }
        }
    }

    /// Substitution flip of a *nonbasic* column: the variable moves to
    /// its opposite bound; basic values absorb `a_rj · U_j` and the
    /// column negates. O(m) — no pivot.
    fn flip_nonbasic(&mut self, col: usize) {
        let u = self.upper[col];
        let total = self.width - 1;
        for r in 0..=self.m {
            let a = self.t[r * self.width + col];
            if a != 0.0 {
                self.t[r * self.width + total] -= a * u;
                self.t[r * self.width + col] = -a;
            }
        }
        self.flipped[col] = !self.flipped[col];
    }

    /// Substitution flip of the *basic* variable of `row` (about to
    /// leave at its upper bound): negate the row and reflect the rhs, so
    /// the row reads `x̄ = U − x` with coefficient +1 again.
    fn flip_basic_row(&mut self, row: usize) {
        let b = self.basis[row];
        let u = self.upper[b];
        let total = self.width - 1;
        // Substituting x̄_b = U − x_b negates x_b's coefficient; scaling
        // the row back to the basic convention (+1 on its own column)
        // negates every *other* entry and reflects the rhs to U − v.
        for c in 0..self.width {
            self.t[row * self.width + c] = -self.t[row * self.width + c];
        }
        self.t[row * self.width + b] = -self.t[row * self.width + b];
        self.t[row * self.width + total] += u;
        self.flipped[b] = !self.flipped[b];
    }

    /// Pivots the tableau on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width;
        let pivot_val = self.t[row * width + col];
        debug_assert!(pivot_val.abs() > EPS, "pivot on ~zero element");
        for c in 0..width {
            self.t[row * width + c] /= pivot_val;
        }
        for r in 0..=self.m {
            if r == row {
                continue;
            }
            let factor = self.t[r * width + col];
            if factor == 0.0 {
                continue;
            }
            for c in 0..width {
                self.t[r * width + c] -= factor * self.t[row * width + c];
            }
        }
        self.basis[row] = col;
    }
}

pub mod reference {
    //! The original row-materialising simplex, kept as an executable
    //! specification (mirroring `kea_core::optimizer::reference`): every
    //! per-variable upper bound becomes an extra `x_i ≤ hi` tableau row,
    //! so a `G`-variable box-constrained LP pays a `(m+G)`-row tableau —
    //! quadratic in `G` per pivot — for constraints the bounded-variable
    //! solver handles as variable status at zero rows. Property tests pin
    //! [`solve`] and [`LpProblem::solve`] to 1e-9 agreement on randomized
    //! LPs, and `optimizer_scale` benches the gap. Not for production
    //! use.
    //!
    //! The numerical fixes of the LP burn-down (exact-tie ratio test,
    //! largest-magnitude drive-out pivot, rhs-relative phase-1
    //! feasibility) are applied here too, so the two implementations
    //! remain comparable on ill-conditioned inputs.

    use super::{LpProblem, LpSolution, Relation, Sense, EPS, FEAS_REL};
    use crate::error::OptError;

    /// Solves `p` with the row-materialising two-phase simplex.
    ///
    /// # Errors
    /// Same conditions as [`LpProblem::solve`].
    pub fn solve(p: &LpProblem) -> Result<LpSolution, OptError> {
        p.validate()?;

        // Shift variables so every lower bound is zero: x = x' + lo.
        // Constraint rhs becomes b − A·lo; upper bounds become rows
        // x'_i ≤ hi_i − lo_i; the objective constant c·lo is re-added at
        // the end.
        let n = p.n_vars();
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
        for c in &p.constraints {
            let shift: f64 = c.coeffs.iter().zip(&p.lower).map(|(a, l)| a * l).sum();
            rows.push((c.coeffs.clone(), c.relation, c.rhs - shift));
        }
        for i in 0..n {
            if let Some(hi) = p.upper[i] {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, Relation::Le, hi - p.lower[i]));
            }
        }

        // Objective in "maximize" convention.
        let obj: Vec<f64> = match p.sense {
            Sense::Maximize => p.objective.clone(),
            Sense::Minimize => p.objective.iter().map(|v| -v).collect(),
        };

        let shifted = solve_standard(&obj, &rows)?;

        let x: Vec<f64> = shifted.iter().zip(&p.lower).map(|(v, l)| v + l).collect();
        let objective: f64 = p.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
        Ok(LpSolution { x, objective })
    }

    /// Solves `maximize obj·x` subject to `rows`, `x ≥ 0`, via two-phase
    /// simplex. Returns the optimal `x`.
    fn solve_standard(
        obj: &[f64],
        rows: &[(Vec<f64>, Relation, f64)],
    ) -> Result<Vec<f64>, OptError> {
        let n = obj.len();

        // Normalize rhs signs.
        let rows: Vec<(Vec<f64>, Relation, f64)> = rows
            .iter()
            .map(|(coeffs, rel, rhs)| {
                if *rhs < 0.0 {
                    let flipped = match rel {
                        Relation::Le => Relation::Ge,
                        Relation::Ge => Relation::Le,
                        Relation::Eq => Relation::Eq,
                    };
                    (coeffs.iter().map(|v| -v).collect(), flipped, -rhs)
                } else {
                    (coeffs.clone(), *rel, *rhs)
                }
            })
            .collect();
        let rhs_scale = rows
            .iter()
            .fold(1.0f64, |acc, (_, _, rhs)| acc.max(1.0 + rhs.abs()));

        let m = rows.len();
        let n_slack = rows
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Eq)
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Le)
            .count();
        let total = n + n_slack + n_art;

        // Tableau: m rows × (total + 1) columns, last column = rhs.
        // Row m is the objective row (phase-specific).
        let width = total + 1;
        let mut t = vec![0.0; (m + 1) * width];
        let mut basis = vec![0usize; m];

        let mut slack_idx = n;
        let mut art_idx = n + n_slack;
        let mut artificials = Vec::new();
        for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
            for (c, &v) in coeffs.iter().enumerate() {
                t[r * width + c] = v;
            }
            t[r * width + total] = *rhs;
            match rel {
                Relation::Le => {
                    t[r * width + slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    t[r * width + slack_idx] = -1.0;
                    slack_idx += 1;
                    t[r * width + art_idx] = 1.0;
                    basis[r] = art_idx;
                    artificials.push(art_idx);
                    art_idx += 1;
                }
                Relation::Eq => {
                    t[r * width + art_idx] = 1.0;
                    basis[r] = art_idx;
                    artificials.push(art_idx);
                    art_idx += 1;
                }
            }
        }

        // Phase 1: minimize sum of artificials ⇒ maximize −Σ artificials.
        // Objective-row convention (matches phase 2): the row starts at −c,
        // then basic columns are priced out to zero reduced cost. Here
        // c_artificial = −1, so the row starts at +1 on artificial columns.
        if !artificials.is_empty() {
            for &a in &artificials {
                t[m * width + a] = 1.0;
            }
            for r in 0..m {
                if artificials.contains(&basis[r]) {
                    for c in 0..width {
                        t[m * width + c] -= t[r * width + c];
                    }
                }
            }
            run_simplex(&mut t, &mut basis, m, width)?;
            // At optimum the stored value is z = −Σ artificials ≤ 0;
            // feasible iff it reaches zero relative to the rhs scale.
            let phase1_obj = t[m * width + total];
            if phase1_obj.abs() > FEAS_REL * rhs_scale {
                return Err(OptError::Infeasible);
            }
            // Drive any artificial still in the basis out (degenerate
            // case), pivoting on the largest-magnitude eligible entry so
            // a near-EPS pivot cannot amplify the row's residual.
            for r in 0..m {
                if artificials.contains(&basis[r]) {
                    let mut best: Option<(usize, f64)> = None;
                    for c in 0..n + n_slack {
                        let a = t[r * width + c].abs();
                        if a > EPS && best.is_none_or(|(_, ba)| a > ba) {
                            best = Some((c, a));
                        }
                    }
                    if let Some((c, _)) = best {
                        pivot(&mut t, &mut basis, m, width, r, c);
                    }
                    // If none exists the row is all-zero and harmless.
                }
            }
            // Zero the phase-1 objective row and forbid artificial columns.
            for c in 0..width {
                t[m * width + c] = 0.0;
            }
            for &a in &artificials {
                for r in 0..m {
                    t[r * width + a] = 0.0;
                }
            }
        }

        // Phase 2: install the real objective row. Convention: row holds −c
        // plus corrections so basic columns have zero reduced cost; then
        // maximize by pivoting on negative entries.
        for (c, &v) in obj.iter().enumerate() {
            t[m * width + c] = -v;
        }
        for r in 0..m {
            let b = basis[r];
            let coeff = t[m * width + b];
            if coeff != 0.0 {
                for c in 0..width {
                    t[m * width + c] -= coeff * t[r * width + c];
                }
            }
        }
        run_simplex(&mut t, &mut basis, m, width)?;

        let mut x = vec![0.0; n];
        for r in 0..m {
            if basis[r] < n {
                x[basis[r]] = t[r * width + total];
            }
        }
        Ok(x)
    }

    /// Runs primal simplex iterations until optimality (no negative reduced
    /// costs) using Bland's rule.
    fn run_simplex(
        t: &mut [f64],
        basis: &mut [usize],
        m: usize,
        width: usize,
    ) -> Result<(), OptError> {
        let total = width - 1;
        // Generous iteration cap: Bland's rule guarantees termination, this is
        // a belt-and-braces guard against numerical live-lock.
        for _ in 0..10_000 {
            // Entering column: first with negative reduced cost (Bland).
            let Some(col) = (0..total).find(|&c| t[m * width + c] < -EPS) else {
                return Ok(());
            };
            // Leaving row: exact min ratio; Bland's smallest-basis-index
            // rule applies to *exactly* tied ratios only — an ε-window
            // tie can replace a strictly smaller ratio with one up to ε
            // larger and drive the true minimum's basic variable
            // negative by ε × (column magnitude).
            let mut best: Option<(usize, f64)> = None;
            for r in 0..m {
                let a = t[r * width + col];
                if a > EPS {
                    let ratio = t[r * width + total] / a;
                    match best {
                        None => best = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio
                                || (ratio == bratio && basis[r] < basis[br])
                            {
                                best = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(OptError::Unbounded);
            };
            pivot(t, basis, m, width, row, col);
        }
        Err(OptError::InvalidParameter(
            "simplex iteration limit exceeded (numerical issue)",
        ))
    }

    /// Pivots the tableau on `(row, col)`.
    fn pivot(t: &mut [f64], basis: &mut [usize], m: usize, width: usize, row: usize, col: usize) {
        let pivot_val = t[row * width + col];
        debug_assert!(pivot_val.abs() > EPS, "pivot on ~zero element");
        for c in 0..width {
            t[row * width + c] /= pivot_val;
        }
        for r in 0..=m {
            if r == row {
                continue;
            }
            let factor = t[r * width + col];
            if factor == 0.0 {
                continue;
            }
            for c in 0..width {
                t[r * width + c] -= factor * t[row * width + c];
            }
        }
        basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
        let sol = LpProblem::maximize(vec![3.0, 5.0])
            .constraint(vec![1.0, 0.0], Relation::Le, 4.0)
            .unwrap()
            .constraint(vec![0.0, 2.0], Relation::Le, 12.0)
            .unwrap()
            .constraint(vec![3.0, 2.0], Relation::Le, 18.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → x=10−y... optimum: y=0,x=10?
        // cost(10,0)=20; cost(2,8)=28 → x=10, y=0, obj=20.
        let sol = LpProblem::minimize(vec![2.0, 3.0])
            .constraint(vec![1.0, 1.0], Relation::Ge, 10.0)
            .unwrap()
            .constraint(vec![1.0, 0.0], Relation::Ge, 2.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-9);
        assert!((sol.x[0] - 10.0).abs() < 1e-9);
        assert!(sol.x[1].abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x ≤ 3 → obj = 5.
        let sol = LpProblem::maximize(vec![1.0, 1.0])
            .constraint(vec![1.0, 1.0], Relation::Eq, 5.0)
            .unwrap()
            .constraint(vec![1.0, 0.0], Relation::Le, 3.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-9);
        assert!((sol.x[0] + sol.x[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let r = LpProblem::maximize(vec![1.0])
            .constraint(vec![1.0], Relation::Le, 1.0)
            .unwrap()
            .constraint(vec![1.0], Relation::Ge, 2.0)
            .unwrap()
            .solve();
        assert_eq!(r, Err(OptError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let r = LpProblem::maximize(vec![1.0, 1.0])
            .constraint(vec![1.0, -1.0], Relation::Le, 1.0)
            .unwrap()
            .solve();
        assert_eq!(r, Err(OptError::Unbounded));
    }

    #[test]
    fn variable_bounds_respected() {
        // max x + y with 1 ≤ x ≤ 2, 0 ≤ y ≤ 3, x + y ≤ 4 → x=2 (or 1..2),
        // best is x=2,y=2? x+y≤4 binds: obj=4... but y≤3 allows x=1,y=3 also
        // obj 4. Objective tie; check feasibility and objective only.
        let sol = LpProblem::maximize(vec![1.0, 1.0])
            .constraint(vec![1.0, 1.0], Relation::Le, 4.0)
            .unwrap()
            .bounds(0, 1.0, Some(2.0))
            .unwrap()
            .bounds(1, 0.0, Some(3.0))
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-9);
        assert!(sol.x[0] >= 1.0 - 1e-9 && sol.x[0] <= 2.0 + 1e-9);
        assert!(sol.x[1] >= -1e-9 && sol.x[1] <= 3.0 + 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with −5 ≤ x ≤ 5 → x = −5.
        let sol = LpProblem::minimize(vec![1.0])
            .bounds(0, -5.0, Some(5.0))
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.x[0] + 5.0).abs() < 1e-9);
        assert!((sol.objective + 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x ≥ −1 written as −x ≤ 1; minimize x with bound x ≥ −1 via
        // constraint −x ≤ 1 and free-ish shifted bounds.
        let sol = LpProblem::minimize(vec![1.0])
            .bounds(0, -10.0, None)
            .unwrap()
            .constraint(vec![-1.0], Relation::Le, 1.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.x[0] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn yarn_shaped_lp() {
        // A miniature of Equations (7)-(10): maximize Σ m_k n_k with a
        // weighted-average-latency budget. Three groups, n = [100, 50, 20],
        // per-container latency weights w = [1.0, 0.8, 0.5]; latency budget
        // forces trading slow-group containers for fast-group ones.
        let n = [100.0, 50.0, 20.0];
        let w = [1.0, 0.8, 0.5];
        let budget = 900.0; // Σ w_k m_k n_k ≤ 900
        let sol = LpProblem::maximize(vec![n[0], n[1], n[2]])
            .constraint(
                vec![w[0] * n[0], w[1] * n[1], w[2] * n[2]],
                Relation::Le,
                budget,
            )
            .unwrap()
            .bounds(0, 4.0, Some(12.0))
            .unwrap()
            .bounds(1, 4.0, Some(12.0))
            .unwrap()
            .bounds(2, 4.0, Some(12.0))
            .unwrap()
            .solve()
            .unwrap();
        // Cheapest latency-per-container is group 2 (w=0.5): expect it to
        // be maxed out, and the most expensive (group 0) to be minimal.
        assert!((sol.x[2] - 12.0).abs() < 1e-6, "x = {:?}", sol.x);
        assert!(sol.x[0] < sol.x[2]);
        // Constraint respected.
        let used: f64 = (0..3).map(|k| w[k] * n[k] * sol.x[k]).sum();
        assert!(used <= budget + 1e-6);
    }

    #[test]
    fn dimension_checks() {
        assert!(matches!(
            LpProblem::maximize(vec![1.0, 2.0]).constraint(vec![1.0], Relation::Le, 1.0),
            Err(OptError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LpProblem::maximize(vec![1.0]).bounds(3, 0.0, None),
            Err(OptError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LpProblem::maximize(vec![1.0]).bounds(0, 2.0, Some(1.0)),
            Err(OptError::InvalidParameter(_))
        ));
        assert!(LpProblem::maximize(vec![]).solve().is_err());
        assert!(matches!(
            LpProblem::maximize(vec![f64::NAN]).solve(),
            Err(OptError::NonFiniteInput)
        ));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let sol = LpProblem::maximize(vec![1.0, 1.0])
            .constraint(vec![1.0, 0.0], Relation::Le, 1.0)
            .unwrap()
            .constraint(vec![0.0, 1.0], Relation::Le, 1.0)
            .unwrap()
            .constraint(vec![1.0, 1.0], Relation::Le, 2.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equality_only_system() {
        // max 2x + y s.t. x + y = 3, x − y = 1 → x=2, y=1, obj=5.
        let sol = LpProblem::maximize(vec![2.0, 1.0])
            .constraint(vec![1.0, 1.0], Relation::Eq, 3.0)
            .unwrap()
            .constraint(vec![1.0, -1.0], Relation::Eq, 1.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 1.0).abs() < 1e-9);
        assert!((sol.objective - 5.0).abs() < 1e-9);
    }

    // ---- regression tests for the numerical-robustness burn-down ----
    //
    // Each of these failed on the pre-fix solver (verified against the
    // original implementation before the fixes landed) and must pass on
    // both the bounded solver and `reference`.

    /// Ratio-test tie-break regression: two rows limit the entering
    /// variable at ratios that differ by 5e-10 — within the old ε-window
    /// but NOT equal. The old test treated them as tied and preferred
    /// the smaller basis index (row 0, ratio 1 + 5e-10), producing
    /// x = 1 + 5e-10 and violating the second row (coefficient 1e6) by
    /// 5e-4. The exact-tie rule must pick the strict minimum (row 1).
    #[test]
    fn tie_break_prefers_strict_minimum_ratio() {
        let build = || {
            LpProblem::maximize(vec![1.0])
                .constraint(vec![1.0], Relation::Le, 1.0 + 5e-10)
                .unwrap()
                .constraint(vec![1e6], Relation::Le, 1e6)
                .unwrap()
        };
        let bounded = build().solve().unwrap();
        let refsol = reference::solve(&build()).unwrap();
        for sol in [&bounded, &refsol] {
            assert!(
                1e6 * sol.x[0] <= 1e6 + 1e-6,
                "vertex violates the tight row: x = {:.12}",
                sol.x[0]
            );
            assert!((sol.x[0] - 1.0).abs() < 1e-9);
        }
    }

    /// Phase-1 drive-out regression: the two equality rows differ by
    /// 1e-9, leaving an artificial basic at ~1e-9 after phase 1 (within
    /// the feasibility tolerance). The old drive-out pivoted on the
    /// *first* eligible column — z with coefficient −1e-8 — dividing the
    /// 1e-9 residual by 1e-8 and producing z ≈ −0.1: an infeasible
    /// vertex. The largest-magnitude rule pivots on w (coefficient −1)
    /// and the residual stays at 1e-9.
    #[test]
    fn drive_out_pivots_on_largest_entry() {
        let build = || {
            LpProblem::maximize(vec![1.0, 0.0, 0.0, 0.0])
                .constraint(vec![1.0, 1.0, 0.0, 0.0], Relation::Eq, 1.0)
                .unwrap()
                .constraint(vec![1.0, 1.0, -1e-8, -1.0], Relation::Eq, 1.0 + 1e-9)
                .unwrap()
        };
        let bounded = build().solve().unwrap();
        let refsol = reference::solve(&build()).unwrap();
        for sol in [&bounded, &refsol] {
            for (i, &v) in sol.x.iter().enumerate() {
                assert!(v >= -1e-6, "x[{i}] = {v:.12} went negative");
            }
        }
    }

    /// Phase-1 feasibility-scale regression: the equality system
    /// 3x+y+z = x+7y+z = x+y+9z = 3s is feasible for every scale s
    /// (solution x/s = [36/43, 12/43, 9/43]); with the absolute 1e-7
    /// threshold the old solver declared it Infeasible from s = 1e9 —
    /// phase-1 rounding dust grows with |b| while the threshold did not.
    #[test]
    fn feasibility_tolerance_is_relative_to_rhs_scale() {
        for scale in [1.0, 1e3, 1e6, 1e9] {
            let build = || {
                LpProblem::maximize(vec![1.0, 1.0, 1.0])
                    .constraint(vec![3.0, 1.0, 1.0], Relation::Eq, 3.0 * scale)
                    .unwrap()
                    .constraint(vec![1.0, 7.0, 1.0], Relation::Eq, 3.0 * scale)
                    .unwrap()
                    .constraint(vec![1.0, 1.0, 9.0], Relation::Eq, 3.0 * scale)
                    .unwrap()
            };
            let expected_obj = (57.0 / 43.0) * scale;
            let bounded = build()
                .solve()
                .unwrap_or_else(|e| panic!("bounded misclassified at scale {scale:e}: {e:?}"));
            let refsol = reference::solve(&build())
                .unwrap_or_else(|e| panic!("reference misclassified at scale {scale:e}: {e:?}"));
            for sol in [&bounded, &refsol] {
                assert!(
                    (sol.objective - expected_obj).abs() <= 1e-9 * scale.max(1.0),
                    "objective {} vs expected {expected_obj} at scale {scale:e}",
                    sol.objective
                );
            }
        }
    }

    // ---- reference ↔ bounded agreement spot checks ----

    #[test]
    fn reference_agrees_on_yarn_shaped_lp() {
        let n = [100.0, 50.0, 20.0];
        let w = [1.0, 0.8, 0.5];
        let p = LpProblem::maximize(vec![n[0], n[1], n[2]])
            .constraint(
                vec![w[0] * n[0], w[1] * n[1], w[2] * n[2]],
                Relation::Le,
                900.0,
            )
            .unwrap()
            .bounds(0, 4.0, Some(12.0))
            .unwrap()
            .bounds(1, 4.0, Some(12.0))
            .unwrap()
            .bounds(2, 4.0, Some(12.0))
            .unwrap();
        let bounded = p.solve().unwrap();
        let refsol = reference::solve(&p).unwrap();
        assert!((bounded.objective - refsol.objective).abs() < 1e-9);
    }

    #[test]
    fn bounded_solver_handles_upper_bound_only_optimum() {
        // max 2x + y with x ≤ 3, y ≤ 5 and no rows at all: both at upper,
        // purely bound-flip iterations (zero-row tableau).
        let sol = LpProblem::maximize(vec![2.0, 1.0])
            .bounds(0, 0.0, Some(3.0))
            .unwrap()
            .bounds(1, 0.0, Some(5.0))
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
        assert!((sol.x[1] - 5.0).abs() < 1e-9);
        assert!((sol.objective - 11.0).abs() < 1e-9);
    }

    #[test]
    fn unbounded_above_without_rows() {
        let r = LpProblem::maximize(vec![1.0]).solve();
        assert_eq!(r, Err(OptError::Unbounded));
    }

    // ---- warm-start behaviour ----

    #[test]
    fn warm_start_reproduces_cold_solution() {
        let lp = |delta: f64| {
            LpProblem::maximize(vec![100.0, 50.0, 20.0])
                .constraint(vec![100.0, 40.0 + delta, 10.0], Relation::Le, 900.0)
                .unwrap()
                .bounds(0, 4.0, Some(12.0))
                .unwrap()
                .bounds(1, 4.0, Some(12.0))
                .unwrap()
                .bounds(2, 4.0, Some(12.0))
                .unwrap()
        };
        let (cold, basis) = lp(0.0).solve_warm(None).unwrap();
        // Same instance from its own basis: identical optimum.
        let (rewarm, basis2) = lp(0.0).solve_warm(Some(&basis)).unwrap();
        assert!((rewarm.objective - cold.objective).abs() < 1e-9);
        assert_eq!(basis, basis2);
        // Perturbed instance warm vs cold: identical optimum.
        let (warm, _) = lp(3.0).solve_warm(Some(&basis)).unwrap();
        let cold2 = lp(3.0).solve().unwrap();
        assert!((warm.objective - cold2.objective).abs() < 1e-9);
        for (a, b) in warm.x.iter().zip(&cold2.x) {
            assert!((a - b).abs() < 1e-9, "warm {:?} vs cold {:?}", warm.x, cold2.x);
        }
    }

    #[test]
    fn warm_start_with_mismatched_basis_falls_back_cold() {
        let (_, basis3) = LpProblem::maximize(vec![1.0, 1.0, 1.0])
            .constraint(vec![1.0, 1.0, 1.0], Relation::Le, 3.0)
            .unwrap()
            .solve_warm(None)
            .unwrap();
        // Two-variable problem handed a three-variable basis: must still
        // solve correctly via the cold path.
        let (sol, _) = LpProblem::maximize(vec![3.0, 5.0])
            .constraint(vec![1.0, 0.0], Relation::Le, 4.0)
            .unwrap()
            .constraint(vec![0.0, 2.0], Relation::Le, 12.0)
            .unwrap()
            .constraint(vec![3.0, 2.0], Relation::Le, 18.0)
            .unwrap()
            .solve_warm(Some(&basis3))
            .unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_across_infeasible_and_back() {
        // A basis from a feasible solve must not corrupt the verdict on
        // an infeasible sibling, and vice versa.
        let feasible = LpProblem::maximize(vec![1.0])
            .constraint(vec![1.0], Relation::Le, 1.0)
            .unwrap();
        let (_, basis) = feasible.solve_warm(None).unwrap();
        let infeasible = LpProblem::maximize(vec![1.0])
            .constraint(vec![1.0], Relation::Le, 1.0)
            .unwrap()
            .constraint(vec![1.0], Relation::Ge, 2.0)
            .unwrap();
        assert_eq!(
            infeasible.solve_warm(Some(&basis)).map(|(s, _)| s),
            Err(OptError::Infeasible)
        );
    }

    #[test]
    fn warm_start_equality_system() {
        // Equality rows force artificials on the cold path; the warm
        // path must rebuild without them and still agree.
        let lp = |rhs: f64| {
            LpProblem::maximize(vec![2.0, 1.0])
                .constraint(vec![1.0, 1.0], Relation::Eq, rhs)
                .unwrap()
                .constraint(vec![1.0, -1.0], Relation::Eq, 1.0)
                .unwrap()
        };
        let (_, basis) = lp(3.0).solve_warm(None).unwrap();
        let (warm, _) = lp(5.0).solve_warm(Some(&basis)).unwrap();
        let cold = lp(5.0).solve().unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert!((warm.x[0] - 3.0).abs() < 1e-9);
        assert!((warm.x[1] - 2.0).abs() < 1e-9);
    }
}
