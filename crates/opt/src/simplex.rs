//! Two-phase primal simplex for small dense linear programs.
//!
//! Solves the YARN-tuning LP of §5.2 (Equations 7–10). The paper used a
//! commercial solver; KEA's LPs have one decision variable per SC-SKU group
//! (6–9 per cluster) plus a few dozen guard-rail constraints, so a dense
//! tableau with Bland's anti-cycling rule solves them exactly and
//! instantly.
//!
//! Supported form:
//!
//! * maximize or minimize `c·x`
//! * constraints `a·x ≤ / ≥ / = b`
//! * per-variable bounds `lo ≤ x ≤ hi` (default `0 ≤ x`), implemented by
//!   shifting lower bounds to zero and materialising upper bounds as rows —
//!   the straightforward choice at this problem size.

// kea-lint: allow-file(index-in-library) — dense tableau kernel; all indices are bounded by the tableau dimensions fixed at construction

use crate::error::OptError;

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sense {
    Maximize,
    Minimize,
}

/// A linear program under construction. Builder-style:
///
/// ```
/// use kea_opt::{LpProblem, Relation};
/// // maximize 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → (4, 0), obj 12.
/// let sol = LpProblem::maximize(vec![3.0, 2.0])
///     .constraint(vec![1.0, 1.0], Relation::Le, 4.0).unwrap()
///     .constraint(vec![1.0, 3.0], Relation::Le, 6.0).unwrap()
///     .solve().unwrap();
/// assert!((sol.objective - 12.0).abs() < 1e-9);
/// assert!((sol.x[0] - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    objective: Vec<f64>,
    sense: Sense,
    constraints: Vec<Constraint>,
    lower: Vec<f64>,
    upper: Vec<Option<f64>>,
}

/// Optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable assignment (in original, unshifted coordinates).
    pub x: Vec<f64>,
    /// Optimal objective value (in the original sense).
    pub objective: f64,
}

const EPS: f64 = 1e-9;

impl LpProblem {
    /// Starts a maximization problem with the given objective coefficients.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Self::new(objective, Sense::Maximize)
    }

    /// Starts a minimization problem with the given objective coefficients.
    pub fn minimize(objective: Vec<f64>) -> Self {
        Self::new(objective, Sense::Minimize)
    }

    fn new(objective: Vec<f64>, sense: Sense) -> Self {
        let n = objective.len();
        LpProblem {
            objective,
            sense,
            constraints: Vec::new(),
            lower: vec![0.0; n],
            upper: vec![None; n],
        }
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds a constraint `coeffs · x (relation) rhs`.
    ///
    /// # Errors
    /// `coeffs` must have one entry per variable and all values finite.
    pub fn constraint(
        mut self,
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    ) -> Result<Self, OptError> {
        if coeffs.len() != self.n_vars() {
            return Err(OptError::DimensionMismatch {
                expected: self.n_vars(),
                actual: coeffs.len(),
            });
        }
        if coeffs.iter().any(|v| !v.is_finite()) || !rhs.is_finite() {
            return Err(OptError::NonFiniteInput);
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        Ok(self)
    }

    /// Sets bounds `lo ≤ x_i ≤ hi` for variable `i` (`hi = None` means
    /// unbounded above). Defaults are `0 ≤ x_i`.
    ///
    /// # Errors
    /// `i` must index a variable and `lo ≤ hi` when `hi` is given.
    pub fn bounds(mut self, i: usize, lo: f64, hi: Option<f64>) -> Result<Self, OptError> {
        if i >= self.n_vars() {
            return Err(OptError::DimensionMismatch {
                expected: self.n_vars(),
                actual: i + 1,
            });
        }
        if !lo.is_finite() || hi.is_some_and(|h| !h.is_finite()) {
            return Err(OptError::NonFiniteInput);
        }
        if let Some(h) = hi {
            if h < lo {
                return Err(OptError::InvalidParameter("upper bound below lower bound"));
            }
        }
        self.lower[i] = lo;
        self.upper[i] = hi;
        Ok(self)
    }

    /// Solves the program.
    ///
    /// # Errors
    /// [`OptError::Infeasible`] or [`OptError::Unbounded`] for degenerate
    /// programs; [`OptError::NonFiniteInput`] if the objective contains
    /// NaN/inf; [`OptError::InvalidParameter`] for an empty objective.
    pub fn solve(&self) -> Result<LpSolution, OptError> {
        if self.objective.is_empty() {
            return Err(OptError::InvalidParameter("objective must be non-empty"));
        }
        if self.objective.iter().any(|v| !v.is_finite()) {
            return Err(OptError::NonFiniteInput);
        }

        // Shift variables so every lower bound is zero: x = x' + lo.
        // Constraint rhs becomes b − A·lo; upper bounds become rows
        // x'_i ≤ hi_i − lo_i; the objective constant c·lo is re-added at
        // the end.
        let n = self.n_vars();
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
        for c in &self.constraints {
            let shift: f64 = c.coeffs.iter().zip(&self.lower).map(|(a, l)| a * l).sum();
            rows.push((c.coeffs.clone(), c.relation, c.rhs - shift));
        }
        for i in 0..n {
            if let Some(hi) = self.upper[i] {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, Relation::Le, hi - self.lower[i]));
            }
        }

        // Objective in "maximize" convention.
        let obj: Vec<f64> = match self.sense {
            Sense::Maximize => self.objective.clone(),
            Sense::Minimize => self.objective.iter().map(|v| -v).collect(),
        };

        let shifted = solve_standard(&obj, &rows)?;

        let x: Vec<f64> = shifted
            .iter()
            .zip(&self.lower)
            .map(|(v, l)| v + l)
            .collect();
        let objective: f64 = self.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
        Ok(LpSolution { x, objective })
    }
}

/// Solves `maximize obj·x` subject to `rows`, `x ≥ 0`, via two-phase
/// simplex. Returns the optimal `x`.
fn solve_standard(
    obj: &[f64],
    rows: &[(Vec<f64>, Relation, f64)],
) -> Result<Vec<f64>, OptError> {
    let n = obj.len();

    // Normalize rhs signs.
    let rows: Vec<(Vec<f64>, Relation, f64)> = rows
        .iter()
        .map(|(coeffs, rel, rhs)| {
            if *rhs < 0.0 {
                let flipped = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (coeffs.iter().map(|v| -v).collect(), flipped, -rhs)
            } else {
                (coeffs.clone(), *rel, *rhs)
            }
        })
        .collect();

    let m = rows.len();
    let n_slack = rows
        .iter()
        .filter(|(_, rel, _)| *rel != Relation::Eq)
        .count();
    let n_art = rows
        .iter()
        .filter(|(_, rel, _)| *rel != Relation::Le)
        .count();
    let total = n + n_slack + n_art;

    // Tableau: m rows × (total + 1) columns, last column = rhs.
    // Row m is the objective row (phase-specific).
    let width = total + 1;
    let mut t = vec![0.0; (m + 1) * width];
    let mut basis = vec![0usize; m];

    let mut slack_idx = n;
    let mut art_idx = n + n_slack;
    let mut artificials = Vec::new();
    for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
        for (c, &v) in coeffs.iter().enumerate() {
            t[r * width + c] = v;
        }
        t[r * width + total] = *rhs;
        match rel {
            Relation::Le => {
                t[r * width + slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                t[r * width + slack_idx] = -1.0;
                slack_idx += 1;
                t[r * width + art_idx] = 1.0;
                basis[r] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                t[r * width + art_idx] = 1.0;
                basis[r] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
        }
    }

    // Phase 1: minimize sum of artificials ⇒ maximize −Σ artificials.
    // Objective-row convention (matches phase 2): the row starts at −c,
    // then basic columns are priced out to zero reduced cost. Here
    // c_artificial = −1, so the row starts at +1 on artificial columns.
    if !artificials.is_empty() {
        for &a in &artificials {
            t[m * width + a] = 1.0;
        }
        for r in 0..m {
            if artificials.contains(&basis[r]) {
                for c in 0..width {
                    t[m * width + c] -= t[r * width + c];
                }
            }
        }
        run_simplex(&mut t, &mut basis, m, width)?;
        // At optimum the stored value is z = −Σ artificials ≤ 0; feasible
        // iff it reaches zero.
        let phase1_obj = t[m * width + total];
        if phase1_obj.abs() > 1e-7 {
            return Err(OptError::Infeasible);
        }
        // Drive any artificial still in the basis out (degenerate case).
        for r in 0..m {
            if artificials.contains(&basis[r]) {
                // Pivot on any non-artificial column with non-zero entry.
                if let Some(c) = (0..n + n_slack).find(|&c| t[r * width + c].abs() > EPS) {
                    pivot(&mut t, &mut basis, m, width, r, c);
                }
                // If none exists the row is all-zero and harmless.
            }
        }
        // Zero the phase-1 objective row and forbid artificial columns.
        for c in 0..width {
            t[m * width + c] = 0.0;
        }
        for &a in &artificials {
            for r in 0..m {
                t[r * width + a] = 0.0;
            }
        }
    }

    // Phase 2: install the real objective row. Convention: row holds −c
    // plus corrections so basic columns have zero reduced cost; then
    // maximize by pivoting on negative entries.
    for (c, &v) in obj.iter().enumerate() {
        t[m * width + c] = -v;
    }
    for r in 0..m {
        let b = basis[r];
        let coeff = t[m * width + b];
        if coeff != 0.0 {
            for c in 0..width {
                t[m * width + c] -= coeff * t[r * width + c];
            }
        }
    }
    run_simplex(&mut t, &mut basis, m, width)?;

    let mut x = vec![0.0; n];
    for r in 0..m {
        if basis[r] < n {
            x[basis[r]] = t[r * width + total];
        }
    }
    Ok(x)
}

/// Runs primal simplex iterations until optimality (no negative reduced
/// costs) using Bland's rule.
fn run_simplex(
    t: &mut [f64],
    basis: &mut [usize],
    m: usize,
    width: usize,
) -> Result<(), OptError> {
    let total = width - 1;
    // Generous iteration cap: Bland's rule guarantees termination, this is
    // a belt-and-braces guard against numerical live-lock.
    for _ in 0..10_000 {
        // Entering column: first with negative reduced cost (Bland).
        let Some(col) = (0..total).find(|&c| t[m * width + c] < -EPS) else {
            return Ok(());
        };
        // Leaving row: min ratio, ties by smallest basis index (Bland).
        let mut best: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = t[r * width + col];
            if a > EPS {
                let ratio = t[r * width + total] / a;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - EPS
                            || (ratio < bratio + EPS && basis[r] < basis[br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((row, _)) = best else {
            return Err(OptError::Unbounded);
        };
        pivot(t, basis, m, width, row, col);
    }
    Err(OptError::InvalidParameter(
        "simplex iteration limit exceeded (numerical issue)",
    ))
}

/// Pivots the tableau on `(row, col)`.
fn pivot(t: &mut [f64], basis: &mut [usize], m: usize, width: usize, row: usize, col: usize) {
    let pivot_val = t[row * width + col];
    debug_assert!(pivot_val.abs() > EPS, "pivot on ~zero element");
    for c in 0..width {
        t[row * width + c] /= pivot_val;
    }
    for r in 0..=m {
        if r == row {
            continue;
        }
        let factor = t[r * width + col];
        if factor == 0.0 {
            continue;
        }
        for c in 0..width {
            t[r * width + c] -= factor * t[row * width + c];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
        let sol = LpProblem::maximize(vec![3.0, 5.0])
            .constraint(vec![1.0, 0.0], Relation::Le, 4.0)
            .unwrap()
            .constraint(vec![0.0, 2.0], Relation::Le, 12.0)
            .unwrap()
            .constraint(vec![3.0, 2.0], Relation::Le, 18.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → x=10−y... optimum: y=0,x=10?
        // cost(10,0)=20; cost(2,8)=28 → x=10, y=0, obj=20.
        let sol = LpProblem::minimize(vec![2.0, 3.0])
            .constraint(vec![1.0, 1.0], Relation::Ge, 10.0)
            .unwrap()
            .constraint(vec![1.0, 0.0], Relation::Ge, 2.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-9);
        assert!((sol.x[0] - 10.0).abs() < 1e-9);
        assert!(sol.x[1].abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x ≤ 3 → obj = 5.
        let sol = LpProblem::maximize(vec![1.0, 1.0])
            .constraint(vec![1.0, 1.0], Relation::Eq, 5.0)
            .unwrap()
            .constraint(vec![1.0, 0.0], Relation::Le, 3.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-9);
        assert!((sol.x[0] + sol.x[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let r = LpProblem::maximize(vec![1.0])
            .constraint(vec![1.0], Relation::Le, 1.0)
            .unwrap()
            .constraint(vec![1.0], Relation::Ge, 2.0)
            .unwrap()
            .solve();
        assert_eq!(r, Err(OptError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let r = LpProblem::maximize(vec![1.0, 1.0])
            .constraint(vec![1.0, -1.0], Relation::Le, 1.0)
            .unwrap()
            .solve();
        assert_eq!(r, Err(OptError::Unbounded));
    }

    #[test]
    fn variable_bounds_respected() {
        // max x + y with 1 ≤ x ≤ 2, 0 ≤ y ≤ 3, x + y ≤ 4 → x=2 (or 1..2),
        // best is x=2,y=2? x+y≤4 binds: obj=4... but y≤3 allows x=1,y=3 also
        // obj 4. Objective tie; check feasibility and objective only.
        let sol = LpProblem::maximize(vec![1.0, 1.0])
            .constraint(vec![1.0, 1.0], Relation::Le, 4.0)
            .unwrap()
            .bounds(0, 1.0, Some(2.0))
            .unwrap()
            .bounds(1, 0.0, Some(3.0))
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-9);
        assert!(sol.x[0] >= 1.0 - 1e-9 && sol.x[0] <= 2.0 + 1e-9);
        assert!(sol.x[1] >= -1e-9 && sol.x[1] <= 3.0 + 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with −5 ≤ x ≤ 5 → x = −5.
        let sol = LpProblem::minimize(vec![1.0])
            .bounds(0, -5.0, Some(5.0))
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.x[0] + 5.0).abs() < 1e-9);
        assert!((sol.objective + 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x ≥ −1 written as −x ≤ 1; minimize x with bound x ≥ −1 via
        // constraint −x ≤ 1 and free-ish shifted bounds.
        let sol = LpProblem::minimize(vec![1.0])
            .bounds(0, -10.0, None)
            .unwrap()
            .constraint(vec![-1.0], Relation::Le, 1.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.x[0] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn yarn_shaped_lp() {
        // A miniature of Equations (7)-(10): maximize Σ m_k n_k with a
        // weighted-average-latency budget. Three groups, n = [100, 50, 20],
        // per-container latency weights w = [1.0, 0.8, 0.5]; latency budget
        // forces trading slow-group containers for fast-group ones.
        let n = [100.0, 50.0, 20.0];
        let w = [1.0, 0.8, 0.5];
        let budget = 900.0; // Σ w_k m_k n_k ≤ 900
        let sol = LpProblem::maximize(vec![n[0], n[1], n[2]])
            .constraint(
                vec![w[0] * n[0], w[1] * n[1], w[2] * n[2]],
                Relation::Le,
                budget,
            )
            .unwrap()
            .bounds(0, 4.0, Some(12.0))
            .unwrap()
            .bounds(1, 4.0, Some(12.0))
            .unwrap()
            .bounds(2, 4.0, Some(12.0))
            .unwrap()
            .solve()
            .unwrap();
        // Cheapest latency-per-container is group 2 (w=0.5): expect it to
        // be maxed out, and the most expensive (group 0) to be minimal.
        assert!((sol.x[2] - 12.0).abs() < 1e-6, "x = {:?}", sol.x);
        assert!(sol.x[0] < sol.x[2]);
        // Constraint respected.
        let used: f64 = (0..3).map(|k| w[k] * n[k] * sol.x[k]).sum();
        assert!(used <= budget + 1e-6);
    }

    #[test]
    fn dimension_checks() {
        assert!(matches!(
            LpProblem::maximize(vec![1.0, 2.0]).constraint(vec![1.0], Relation::Le, 1.0),
            Err(OptError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LpProblem::maximize(vec![1.0]).bounds(3, 0.0, None),
            Err(OptError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LpProblem::maximize(vec![1.0]).bounds(0, 2.0, Some(1.0)),
            Err(OptError::InvalidParameter(_))
        ));
        assert!(LpProblem::maximize(vec![]).solve().is_err());
        assert!(matches!(
            LpProblem::maximize(vec![f64::NAN])
                .solve(),
            Err(OptError::NonFiniteInput)
        ));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let sol = LpProblem::maximize(vec![1.0, 1.0])
            .constraint(vec![1.0, 0.0], Relation::Le, 1.0)
            .unwrap()
            .constraint(vec![0.0, 1.0], Relation::Le, 1.0)
            .unwrap()
            .constraint(vec![1.0, 1.0], Relation::Le, 2.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equality_only_system() {
        // max 2x + y s.t. x + y = 3, x − y = 1 → x=2, y=1, obj=5.
        let sol = LpProblem::maximize(vec![2.0, 1.0])
            .constraint(vec![1.0, 1.0], Relation::Eq, 3.0)
            .unwrap()
            .constraint(vec![1.0, -1.0], Relation::Eq, 1.0)
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 1.0).abs() < 1e-9);
        assert!((sol.objective - 5.0).abs() < 1e-9);
    }
}
