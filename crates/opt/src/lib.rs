//! Optimization toolkit for KEA's Optimizer module.
//!
//! The paper's Optimizer consumes calibrated models and picks the best
//! configuration. Three solver families cover all four applications:
//!
//! * [`simplex`] — a from-scratch bounded-variable two-phase primal
//!   simplex solving the linear program of §5.2 (Equations 7–10:
//!   maximize total running containers subject to the cluster-wide
//!   average-latency constraint). Per-variable bounds are carried as
//!   variable status instead of tableau rows, and
//!   [`LpProblem::solve_warm`] re-solves a re-costed instance from a
//!   previous optimal [`Basis`] — the operating-point sweep's hot path.
//!   The paper uses "commercial solvers"; the original row-materialising
//!   solver survives as `simplex::reference`, the executable
//!   specification the property tests pin the production solver against.
//! * [`grid`] — exhaustive grid search, the "simple heuristics" fallback
//!   mentioned in §6.2.
//! * [`monte_carlo`] — the Monte-Carlo expected-cost minimizer of §6.1,
//!   used to choose SSD/RAM sizes for future SKUs (Figure 14).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod grid;
pub mod monte_carlo;
pub mod simplex;

pub use error::OptError;
pub use grid::{GridPoint, GridSearch};
pub use monte_carlo::{minimize_expected_cost, CandidateCost, MonteCarloReport};
pub use simplex::{Basis, LpProblem, LpSolution, Relation};
