//! Monte-Carlo expected-cost minimization (§6.1).
//!
//! The SKU-design application estimates the expected total cost of each
//! candidate (SSD, RAM) configuration by repeatedly (1) drawing per-core
//! usage slopes from the observational distribution, (2) computing the
//! binding resource, (3) pricing idle resources and stranding penalties.
//! "By repeating the above process 1000 times, we estimate the expected
//! cost for each design configuration" — this module is that loop, made
//! generic over the cost sampler so power-capping what-ifs can reuse it.

use crate::error::OptError;
use rand::Rng;

/// Expected-cost estimate for one candidate configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateCost {
    /// Index of the candidate in the input slice.
    pub index: usize,
    /// Sample mean of the cost draws.
    pub mean_cost: f64,
    /// Sample standard deviation of the cost draws.
    pub std_cost: f64,
    /// Standard error of the mean (`std / √draws`).
    pub std_err: f64,
    /// Number of Monte-Carlo draws used.
    pub draws: usize,
}

/// Full report of a Monte-Carlo sweep: per-candidate estimates plus the
/// winner.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    /// Per-candidate cost estimates, in input order.
    pub candidates: Vec<CandidateCost>,
    /// Index of the candidate with the lowest mean cost.
    pub best_index: usize,
}

impl MonteCarloReport {
    /// The winning candidate's estimate.
    pub fn best(&self) -> &CandidateCost {
        // kea-lint: allow(index-in-library) — best_index is produced in-bounds by minimize_expected_cost
        &self.candidates[self.best_index]
    }
}

/// Estimates the expected cost of each candidate with `draws` Monte-Carlo
/// samples and returns the argmin.
///
/// `cost` is called as `cost(candidate, rng)` and must return one cost
/// draw. Candidates are generic (`C`), matching the paper's (SSD, RAM)
/// design pairs.
///
/// # Errors
/// Needs at least one candidate, at least one draw, and finite cost draws.
pub fn minimize_expected_cost<C, F, R>(
    candidates: &[C],
    draws: usize,
    rng: &mut R,
    mut cost: F,
) -> Result<MonteCarloReport, OptError>
where
    F: FnMut(&C, &mut R) -> f64,
    R: Rng + ?Sized,
{
    if candidates.is_empty() {
        return Err(OptError::EmptySearchSpace);
    }
    if draws == 0 {
        return Err(OptError::InvalidParameter("draws must be positive"));
    }
    let mut out = Vec::with_capacity(candidates.len());
    for (index, cand) in candidates.iter().enumerate() {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..draws {
            let c = cost(cand, rng);
            if !c.is_finite() {
                return Err(OptError::NonFiniteInput);
            }
            sum += c;
            sum_sq += c * c;
        }
        let n = draws as f64;
        let mean = sum / n;
        let var = if draws > 1 {
            ((sum_sq - sum * sum / n) / (n - 1.0)).max(0.0)
        } else {
            0.0
        };
        let std = var.sqrt();
        out.push(CandidateCost {
            index,
            mean_cost: mean,
            std_cost: std,
            std_err: std / n.sqrt(),
            draws,
        });
    }
    let best_index = out
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.mean_cost.total_cmp(&b.mean_cost))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(MonteCarloReport {
        candidates: out,
        best_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn picks_the_cheapest_candidate() {
        // Candidate k has cost k + noise; candidate 0 must win.
        let candidates = [0.0, 1.0, 2.0, 3.0];
        let mut rng = StdRng::seed_from_u64(5);
        let report = minimize_expected_cost(&candidates, 500, &mut rng, |&c, rng| {
            c + rng.gen_range(-0.1..0.1)
        })
        .unwrap();
        assert_eq!(report.best_index, 0);
        assert!((report.best().mean_cost - 0.0).abs() < 0.05);
        assert_eq!(report.candidates.len(), 4);
    }

    #[test]
    fn sweet_spot_shape_like_figure_14() {
        // U-shaped expected cost in the candidate value — too little
        // resource strands the machine, too much wastes capex. The
        // minimizer should land near the middle.
        let sizes: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let report = minimize_expected_cost(&sizes, 2000, &mut rng, |&s, rng| {
            let demand = rng.gen_range(3.0..6.0);
            let idle = (s - demand).max(0.0) * 1.0; // idle penalty
            let stranded = if s < demand { (demand - s) * 10.0 } else { 0.0 };
            idle + stranded
        })
        .unwrap();
        let best_size = sizes[report.best_index];
        assert!(
            (5.0..=7.0).contains(&best_size),
            "best size = {best_size}"
        );
        // Cost curve is U-shaped: endpoints more expensive than the winner.
        let first = report.candidates.first().unwrap().mean_cost;
        let last = report.candidates.last().unwrap().mean_cost;
        let best = report.best().mean_cost;
        assert!(best < first && best < last);
    }

    #[test]
    fn deterministic_under_seed() {
        let candidates = [1.0, 2.0];
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            minimize_expected_cost(&candidates, 100, &mut rng, |&c, rng| {
                c * rng.gen_range(0.9..1.1)
            })
            .unwrap()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn std_err_shrinks_with_more_draws() {
        let candidates = [1.0];
        let run = |draws: usize| {
            let mut rng = StdRng::seed_from_u64(9);
            minimize_expected_cost(&candidates, draws, &mut rng, |_, rng| {
                rng.gen_range(0.0..1.0)
            })
            .unwrap()
            .candidates[0]
                .std_err
        };
        assert!(run(4000) < run(100));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty: [f64; 0] = [];
        assert_eq!(
            minimize_expected_cost(&empty, 10, &mut rng, |_, _| 0.0),
            Err(OptError::EmptySearchSpace)
        );
        assert!(matches!(
            minimize_expected_cost(&[1.0], 0, &mut rng, |_, _| 0.0),
            Err(OptError::InvalidParameter(_))
        ));
        assert_eq!(
            minimize_expected_cost(&[1.0], 10, &mut rng, |_, _| f64::NAN),
            Err(OptError::NonFiniteInput)
        );
    }

    #[test]
    fn single_draw_has_zero_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let report = minimize_expected_cost(&[1.0], 1, &mut rng, |_, _| 7.0).unwrap();
        assert_eq!(report.candidates[0].std_cost, 0.0);
        assert_eq!(report.candidates[0].mean_cost, 7.0);
    }
}
