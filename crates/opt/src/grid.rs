//! Exhaustive grid search.
//!
//! §6.2: "The optimizer can take either a closed-form formulation and use
//! commercial solvers, or use simple heuristics." Grid search is the
//! simple heuristic: KEA's configuration spaces are small and discrete
//! (container counts, capping levels, candidate SSD/RAM sizes), so
//! enumerating them with a well-defined tie-break beats anything clever.

// kea-lint: allow-file(index-in-library) — odometer indices are bounded per-axis by the axis lengths they iterate

use crate::error::OptError;

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Coordinates of the point (one per axis).
    pub coords: Vec<f64>,
    /// Objective value at the point.
    pub value: f64,
}

/// Exhaustive search over the Cartesian product of axes.
///
/// ```
/// use kea_opt::GridSearch;
/// let grid = GridSearch::new()
///     .linspace_axis(-2.0, 2.0, 41).unwrap();
/// let best = grid.minimize(|c| (c[0] - 0.7).powi(2)).unwrap();
/// assert!((best.coords[0] - 0.7).abs() < 0.06);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GridSearch {
    axes: Vec<Vec<f64>>,
}

impl GridSearch {
    /// Creates an empty grid; add axes with [`GridSearch::axis`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an axis with explicit candidate values.
    ///
    /// # Errors
    /// The axis must be non-empty and finite.
    pub fn axis(mut self, values: Vec<f64>) -> Result<Self, OptError> {
        if values.is_empty() {
            return Err(OptError::EmptySearchSpace);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(OptError::NonFiniteInput);
        }
        self.axes.push(values);
        Ok(self)
    }

    /// Adds a linearly spaced axis of `n ≥ 2` points covering `[lo, hi]`.
    ///
    /// # Errors
    /// Requires `lo < hi`, `n ≥ 2`, finite endpoints.
    pub fn linspace_axis(self, lo: f64, hi: f64, n: usize) -> Result<Self, OptError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(OptError::NonFiniteInput);
        }
        if n < 2 {
            return Err(OptError::InvalidParameter("linspace needs at least 2 points"));
        }
        if lo >= hi {
            return Err(OptError::InvalidParameter("linspace needs lo < hi"));
        }
        let step = (hi - lo) / (n - 1) as f64;
        self.axis((0..n).map(|i| lo + step * i as f64).collect())
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.axes.iter().map(Vec::len).product()
    }

    /// True when no axes were added.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Evaluates `f` on every grid point and returns the minimizer.
    /// Ties break toward the earlier point in row-major order, making the
    /// result deterministic.
    ///
    /// # Errors
    /// The grid must have at least one axis; `f` must return finite values.
    pub fn minimize<F>(&self, mut f: F) -> Result<GridPoint, OptError>
    where
        F: FnMut(&[f64]) -> f64,
    {
        if self.axes.is_empty() {
            return Err(OptError::EmptySearchSpace);
        }
        let mut best: Option<GridPoint> = None;
        let mut idx = vec![0usize; self.axes.len()];
        let mut coords: Vec<f64> = self.axes.iter().map(|a| a[0]).collect();
        loop {
            let value = f(&coords);
            if !value.is_finite() {
                return Err(OptError::NonFiniteInput);
            }
            if best.as_ref().is_none_or(|b| value < b.value) {
                best = Some(GridPoint {
                    coords: coords.clone(),
                    value,
                });
            }
            // Advance the odometer.
            let mut pos = self.axes.len();
            loop {
                if pos == 0 {
                    // At least one point was evaluated before the odometer
                    // can wrap, so `best` is always populated.
                    return best.ok_or(OptError::EmptySearchSpace);
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < self.axes[pos].len() {
                    coords[pos] = self.axes[pos][idx[pos]];
                    break;
                }
                idx[pos] = 0;
                coords[pos] = self.axes[pos][0];
            }
        }
    }

    /// Evaluates `f` on every grid point and returns the maximizer.
    ///
    /// # Errors
    /// Same as [`GridSearch::minimize`].
    pub fn maximize<F>(&self, mut f: F) -> Result<GridPoint, OptError>
    where
        F: FnMut(&[f64]) -> f64,
    {
        let flipped = self.minimize(|c| -f(c))?;
        Ok(GridPoint {
            value: -flipped.value,
            coords: flipped.coords,
        })
    }

    /// Evaluates `f` everywhere and returns all points (for heat-maps like
    /// Figure 14).
    ///
    /// # Errors
    /// Same as [`GridSearch::minimize`].
    pub fn evaluate_all<F>(&self, mut f: F) -> Result<Vec<GridPoint>, OptError>
    where
        F: FnMut(&[f64]) -> f64,
    {
        if self.axes.is_empty() {
            return Err(OptError::EmptySearchSpace);
        }
        let mut out = Vec::with_capacity(self.len());
        let mut idx = vec![0usize; self.axes.len()];
        let mut coords: Vec<f64> = self.axes.iter().map(|a| a[0]).collect();
        loop {
            let value = f(&coords);
            if !value.is_finite() {
                return Err(OptError::NonFiniteInput);
            }
            out.push(GridPoint {
                coords: coords.clone(),
                value,
            });
            let mut pos = self.axes.len();
            loop {
                if pos == 0 {
                    return Ok(out);
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < self.axes[pos].len() {
                    coords[pos] = self.axes[pos][idx[pos]];
                    break;
                }
                idx[pos] = 0;
                coords[pos] = self.axes[pos][0];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_paraboloid() {
        let g = GridSearch::new()
            .linspace_axis(-2.0, 2.0, 41)
            .unwrap()
            .linspace_axis(-2.0, 2.0, 41)
            .unwrap();
        let best = g
            .minimize(|c| (c[0] - 0.5).powi(2) + (c[1] + 1.0).powi(2))
            .unwrap();
        assert!((best.coords[0] - 0.5).abs() < 0.06);
        assert!((best.coords[1] + 1.0).abs() < 0.06);
    }

    #[test]
    fn maximize_mirrors_minimize() {
        let g = GridSearch::new().axis(vec![1.0, 2.0, 3.0]).unwrap();
        let best = g.maximize(|c| 10.0 - (c[0] - 2.0).powi(2)).unwrap();
        assert_eq!(best.coords, vec![2.0]);
        assert_eq!(best.value, 10.0);
    }

    #[test]
    fn len_is_product_of_axes() {
        let g = GridSearch::new()
            .axis(vec![1.0, 2.0])
            .unwrap()
            .axis(vec![1.0, 2.0, 3.0])
            .unwrap();
        assert_eq!(g.len(), 6);
        assert_eq!(g.evaluate_all(|_| 0.0).unwrap().len(), 6);
    }

    #[test]
    fn evaluate_all_row_major_order() {
        let g = GridSearch::new()
            .axis(vec![0.0, 1.0])
            .unwrap()
            .axis(vec![10.0, 20.0])
            .unwrap();
        let pts = g.evaluate_all(|c| c[0] * 100.0 + c[1]).unwrap();
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![10.0, 20.0, 110.0, 120.0]);
    }

    #[test]
    fn ties_break_to_first_point() {
        let g = GridSearch::new().axis(vec![5.0, 6.0, 7.0]).unwrap();
        let best = g.minimize(|_| 1.0).unwrap();
        assert_eq!(best.coords, vec![5.0]);
    }

    #[test]
    fn empty_and_invalid_inputs() {
        assert!(GridSearch::new().minimize(|_| 0.0).is_err());
        assert!(GridSearch::new().axis(vec![]).is_err());
        assert!(GridSearch::new().axis(vec![f64::NAN]).is_err());
        assert!(GridSearch::new().linspace_axis(1.0, 1.0, 5).is_err());
        assert!(GridSearch::new().linspace_axis(0.0, 1.0, 1).is_err());
        let g = GridSearch::new().axis(vec![1.0]).unwrap();
        assert!(g.minimize(|_| f64::NAN).is_err());
    }

    #[test]
    fn linspace_endpoints_included() {
        let g = GridSearch::new().linspace_axis(0.0, 10.0, 11).unwrap();
        let pts = g.evaluate_all(|c| c[0]).unwrap();
        assert_eq!(pts.first().unwrap().value, 0.0);
        assert_eq!(pts.last().unwrap().value, 10.0);
        assert_eq!(pts.len(), 11);
    }
}
