//! In-memory telemetry store: columnar, indexed, with incremental re-seal.
//!
//! The production KEA pipeline lands metrics in Cosmos itself and re-reads
//! them daily; our reproduction keeps the observation window addressable
//! in memory while the durable history scales past it. The store is
//! append-only with filtered views — exactly the access pattern of the
//! Performance Monitor — and every module re-reads the same window many
//! times per tuning run, so reads are what must be fast *and* appends
//! must not invalidate the read structures wholesale: the monitor is a
//! continuously running service ingesting per-hour batches.
//!
//! # Layout: N sealed runs + sorted delta
//!
//! The store is an LSM-shaped structure:
//!
//! * The **sealed runs** are immutable [`ColumnIndex`]es, oldest first:
//!   each is a compacted slice of history, sorted by `(group, hour,
//!   machine)` with interned dense ids, CSR offset-range indexes over
//!   groups/hours/machines, and struct-of-arrays metric columns. Every
//!   run carries its inclusive `[min_hour, max_hour]` bounds, so
//!   hour-windowed queries skip runs that cannot contain the window.
//! * The **delta** is the tail of the record log appended since the last
//!   seal. On first query it is sealed into a *mini* `ColumnIndex` of
//!   its own (cost `O(d log d)` for `d` delta rows — small by
//!   construction), cached until the next mutation.
//!
//! Every view ([`by_group`](TelemetryStore::by_group),
//! [`by_hours`](TelemetryStore::by_hours), …) and every fused kernel in
//! [`crate::aggregate`] answers by **k-way merging** the relevant runs
//! plus the delta — sorted sources, one key-ordered merge, no re-sort.
//! When the delta outgrows its threshold (checked once per mutating
//! call) or on an explicit [`seal`](TelemetryStore::seal), it becomes a
//! new sealed run; a *ladder* compaction then merges the newest runs
//! while each is no larger than its elder neighbour — the classic
//! binary-counter schedule, so every record is re-merged `O(log n)`
//! times total and big old runs are left untouched by small fresh ones.
//! [`compact_segments`](TelemetryStore::compact_segments) additionally
//! k-way-merges adjacent runs whose hour bounds overlap (restoring
//! pruning precision) or that are undersized.
//!
//! # Durability
//!
//! A store created by [`TelemetryStore::open`] mirrors each sealed run
//! to a segment file under the manifest-flip protocol of
//! [`crate::persist`]. Segment-backed runs load **lazily**: opening a
//! directory validates headers only, a run's body is decoded on the
//! first query that touches it, and [`sync`](TelemetryStore::sync)
//! evicts the coldest decoded runs past a small LRU budget
//! ([`set_segment_cache_limit`](TelemetryStore::set_segment_cache_limit)).
//! A run whose segment fails validation at load time is quarantined and
//! served as empty; the store remembers the failure ("degraded"),
//! [`verify`](TelemetryStore::verify) and `sync` surface it, and `sync`
//! refuses to rewrite history from a degraded image.
//!
//! The pre-columnar flat-scan implementation survives unchanged as
//! [`reference::TelemetryStore`]: it is the executable specification that
//! the randomized agreement suite (`tests/agreement.rs`) pins the
//! multi-run engine against at every intermediate state of interleaved
//! mutate/query sequences, and the baseline the
//! `telemetry_scan`/`telemetry_stream` benches measure speedups over.

use crate::metric::Metric;
use crate::persist;
use crate::record::{GroupKey, MachineHourRecord, MachineId};
use std::collections::BTreeSet;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Delta sizes below this never trigger automatic sealing: indexing a
/// handful of rows per mutation would pay the sort with no read-side
/// benefit.
const MIN_COMPACT_DELTA: usize = 1024;

/// Runs smaller than this are merge targets for the sync-time policy
/// compaction: they cost a manifest entry and a header read each, and
/// merging two of them is cheap by definition.
const MIN_SEGMENT_ROWS: usize = 4096;

/// Default cap on decoded segment-backed runs kept resident between
/// syncs.
const DEFAULT_SEGMENT_CACHE: usize = 8;

/// One sealed, immutable run of the store.
///
/// Invariants: `rows >= 1` (empty runs are never created); when `seg`
/// is `None` the run exists only in memory and `index` is always
/// resident (there is nothing to reload it from).
#[derive(Debug)]
struct SealedRun {
    /// Row count (also recorded in the manifest once persisted).
    rows: usize,
    /// Inclusive `[min_hour, max_hour]` covered by the run.
    bounds: (u64, u64),
    /// Segment file name once persisted by a sync; `None` while dirty.
    seg: Option<String>,
    /// Decoded index; for segment-backed runs, loaded lazily on first
    /// touch and evictable at `&mut self` points.
    index: OnceLock<ColumnIndex>,
    /// LRU stamp from the store's touch clock (Relaxed is enough: the
    /// stamp only orders evictions, never gates an observable read).
    touch: AtomicU64,
}

impl SealedRun {
    /// A run born in memory from `index`, with `bounds` already
    /// extracted by the caller (who also guarantees non-emptiness).
    fn dirty(index: ColumnIndex, bounds: (u64, u64)) -> SealedRun {
        let rows = index.sorted.len();
        let cell = OnceLock::new();
        let _ = cell.set(index);
        SealedRun { rows, bounds, seg: None, index: cell, touch: AtomicU64::new(0) }
    }
}

/// Append-only store of machine-hour records: N sealed columnar runs
/// plus a small delta buffer for streaming appends.
#[derive(Debug)]
pub struct TelemetryStore {
    /// Sealed runs, oldest first.
    runs: Vec<SealedRun>,
    /// Insertion-order delta tail appended since the last seal.
    tail: Vec<MachineHourRecord>,
    /// Lazily built mini-index over the delta tail, invalidated by every
    /// mutation.
    delta: OnceLock<ColumnIndex>,
    /// Attachment to an on-disk store directory, present only for stores
    /// created by [`TelemetryStore::open`]. In-memory stores (the
    /// default) carry `None` and reject [`TelemetryStore::sync`].
    backing: Option<persist::Backing>,
    /// First segment-load failure observed by a query, if any. Queries
    /// cannot return `Result` (they are infallible on in-memory
    /// stores), so a lazy load that fails parks its diagnosis here,
    /// serves the run as empty, and [`TelemetryStore::verify`] /
    /// [`TelemetryStore::sync`] surface it.
    degraded: Mutex<Option<(PathBuf, String)>>,
    /// Max decoded segment-backed runs kept resident across syncs.
    cache_limit: usize,
    /// Monotonic clock behind the per-run LRU touch stamps.
    touch_clock: AtomicU64,
}

impl Default for TelemetryStore {
    fn default() -> Self {
        TelemetryStore {
            runs: Vec::new(),
            tail: Vec::new(),
            delta: OnceLock::new(),
            backing: None,
            degraded: Mutex::new(None),
            cache_limit: DEFAULT_SEGMENT_CACHE,
            touch_clock: AtomicU64::new(0),
        }
    }
}

impl Clone for TelemetryStore {
    /// Clones the in-memory state only. A clone of a durable store is
    /// *detached*: it holds the same records but no file handles, so
    /// mutating the clone never races the original's directory and
    /// `sync()` on the clone reports [`persist::PersistError::NotDurable`].
    /// Cloning forces lazy runs resident; runs a degraded original
    /// serves as empty are dropped from the clone (which is then
    /// internally consistent and not degraded).
    fn clone(&self) -> Self {
        let runs = self
            .runs
            .iter()
            .filter_map(|r| {
                let index = self.run_side(r).clone();
                let bounds = index.hours.first().copied().zip(index.hours.last().copied())?;
                Some(SealedRun::dirty(index, bounds))
            })
            .collect();
        TelemetryStore {
            runs,
            tail: self.tail.clone(),
            delta: self.delta.clone(),
            backing: None,
            degraded: Mutex::new(None),
            cache_limit: self.cache_limit,
            touch_clock: AtomicU64::new(0),
        }
    }
}

/// The sealed columnar layout. Built by [`ColumnIndex::build`] (sort) or
/// [`ColumnIndex::merge_many`] (linear compaction of sorted runs);
/// immutable afterwards. All `Vec<usize>` offset tables follow the CSR
/// convention: `offsets.len() == keys.len() + 1` and key `i` owns rows
/// `offsets[i]..offsets[i + 1]`.
//
// kea-lint: allow-file(index-in-library) — dense index kernel: every row
// position is produced by this module's own sort/merge/partition passes and
// every offset table is constructed with the CSR invariant checked in tests.
#[derive(Debug, Clone)]
pub(crate) struct ColumnIndex {
    /// All records sorted by `(group, hour, machine)`.
    pub(crate) sorted: Vec<MachineHourRecord>,
    /// Distinct groups, ascending.
    pub(crate) groups: Vec<GroupKey>,
    /// CSR offsets into `sorted` per group.
    pub(crate) group_offsets: Vec<usize>,
    /// Distinct machines, ascending. A machine's position here is its
    /// *dense id*.
    pub(crate) machines: Vec<MachineId>,
    /// Dense machine id of each row of `sorted`.
    pub(crate) machine_dense: Vec<u32>,
    /// Distinct hours, ascending.
    pub(crate) hours: Vec<u64>,
    /// Row positions of `sorted`, re-ordered by `(hour, machine)`.
    pub(crate) hour_order: Vec<usize>,
    /// CSR offsets into `hour_order` per distinct hour.
    pub(crate) hour_offsets: Vec<usize>,
    /// Row positions of `sorted`, re-ordered by `(machine, hour)`.
    pub(crate) machine_order: Vec<usize>,
    /// CSR offsets into `machine_order` per dense machine id.
    pub(crate) machine_offsets: Vec<usize>,
    /// Struct-of-arrays metric columns in `sorted` row order:
    /// `columns[m.index()][row] == m.value(&sorted[row].metrics)`.
    pub(crate) columns: Vec<Vec<f64>>,
}

/// The empty index — the stand-in side wherever view code wants a
/// uniform merge shape or a degraded run must serve something.
pub(crate) fn empty_index() -> &'static ColumnIndex {
    static EMPTY: OnceLock<ColumnIndex> = OnceLock::new();
    EMPTY.get_or_init(|| ColumnIndex::build(&[]))
}

impl ColumnIndex {
    /// Sorts and interns `records` into the columnar layout.
    pub(crate) fn build(records: &[MachineHourRecord]) -> Self {
        let mut sorted = records.to_vec();
        sorted.sort_unstable_by_key(|r| (r.group, r.hour, r.machine));
        Self::from_sorted(sorted)
    }

    /// Builds the index structures over records already sorted by
    /// `(group, hour, machine)` — the shared tail of [`ColumnIndex::build`]
    /// and the merge fallback paths.
    fn from_sorted(sorted: Vec<MachineHourRecord>) -> Self {
        let n = sorted.len();

        // Group runs → CSR offsets (sorted is group-major).
        let (groups, group_offsets) = group_runs(&sorted);

        // Machine interning: distinct sorted ids, then a dense id per row.
        let mut machines: Vec<MachineId> = sorted.iter().map(|r| r.machine).collect();
        machines.sort_unstable();
        machines.dedup();
        let machine_dense: Vec<u32> = sorted
            .iter()
            .map(|r| {
                // Every row's machine is in `machines` by construction,
                // and dense ids fit u32 because MachineId wraps a u32.
                machines.partition_point(|m| *m < r.machine) as u32
            })
            .collect();

        // Secondary orderings: by (hour, machine) and by (machine, hour).
        // Both are permutations of row positions into `sorted`, so the
        // heavy record payload is stored exactly once.
        let mut hour_order: Vec<usize> = (0..n).collect();
        hour_order.sort_unstable_by_key(|&row| (sorted[row].hour, sorted[row].machine));
        let (hours, hour_offsets) = hour_runs(&sorted, &hour_order);

        let mut machine_order: Vec<usize> = (0..n).collect();
        machine_order.sort_unstable_by_key(|&row| (machine_dense[row], sorted[row].hour));
        let machine_offsets = machine_offsets_of(&machine_dense, &machine_order, machines.len());

        // Struct-of-arrays metric columns, derived ratios included.
        let mut columns = vec![Vec::with_capacity(n); Metric::ALL.len()];
        for r in &sorted {
            let row = Metric::row_of(&r.metrics);
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }

        ColumnIndex {
            sorted,
            groups,
            group_offsets,
            machines,
            machine_dense,
            hours,
            hour_order,
            hour_offsets,
            machine_order,
            machine_offsets,
            columns,
        }
    }

    /// Rebuilds an index from the four core tables a segment file
    /// persists, re-deriving every other table and validating the
    /// structural invariants the query paths rely on. Returns `None` on
    /// any violation — a segment that decodes byte-exactly but encodes
    /// an inconsistent index (hand-edited, or written by a buggy
    /// future version) must be rejected, not queried.
    ///
    /// Persisting only `sorted`, `machines`, and the two permutations
    /// keeps segments near-dump-speed to write while the O(n) rebuild
    /// here stays far cheaper than the O(n log n) sorts that dominate
    /// [`ColumnIndex::build`].
    pub(crate) fn from_persisted(
        sorted: Vec<MachineHourRecord>,
        machines: Vec<MachineId>,
        hour_order: Vec<usize>,
        machine_order: Vec<usize>,
    ) -> Option<Self> {
        let n = sorted.len();
        let key = |r: &MachineHourRecord| (r.group, r.hour, r.machine);
        if !sorted.windows(2).all(|w| key(&w[0]) <= key(&w[1])) {
            return None;
        }
        // The machine list must be the exact distinct set: strictly
        // ascending, and every row's machine resolvable to a dense id.
        if !machines.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        let mut machine_dense = Vec::with_capacity(n);
        for r in &sorted {
            let dense = machines.partition_point(|m| *m < r.machine);
            if machines.get(dense) != Some(&r.machine) {
                return None;
            }
            machine_dense.push(dense as u32);
        }
        // No phantom machines: every interned id is referenced by a row.
        let mut machine_seen = vec![false; machines.len()];
        for &d in &machine_dense {
            if let Some(slot) = machine_seen.get_mut(d as usize) {
                *slot = true;
            }
        }
        if !machine_seen.iter().all(|&s| s) {
            return None;
        }

        // Each secondary ordering must be a true permutation of row
        // positions, sorted by its secondary key.
        let is_permutation = |order: &[usize]| {
            if order.len() != n {
                return false;
            }
            let mut seen = vec![false; n];
            for &row in order {
                match seen.get_mut(row) {
                    Some(slot) if !*slot => *slot = true,
                    _ => return false,
                }
            }
            true
        };
        if !is_permutation(&hour_order) || !is_permutation(&machine_order) {
            return None;
        }
        if !hour_order
            .windows(2)
            .all(|w| (sorted[w[0]].hour, sorted[w[0]].machine) <= (sorted[w[1]].hour, sorted[w[1]].machine))
        {
            return None;
        }
        if !machine_order
            .windows(2)
            .all(|w| (machine_dense[w[0]], sorted[w[0]].hour) <= (machine_dense[w[1]], sorted[w[1]].hour))
        {
            return None;
        }

        // Past validation the derivations mirror `from_sorted`.
        let (groups, group_offsets) = group_runs(&sorted);
        let (hours, hour_offsets) = hour_runs(&sorted, &hour_order);
        let machine_offsets = machine_offsets_of(&machine_dense, &machine_order, machines.len());
        let mut columns = vec![Vec::with_capacity(n); Metric::ALL.len()];
        for r in &sorted {
            let row = Metric::row_of(&r.metrics);
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }

        Some(ColumnIndex {
            sorted,
            groups,
            group_offsets,
            machines,
            machine_dense,
            hours,
            hour_order,
            hour_offsets,
            machine_order,
            machine_offsets,
            columns,
        })
    }

    /// Compacts two sealed indexes into one in `O(n + d)`: every table is
    /// produced by a linear two-way merge of the already-sorted inputs —
    /// no re-sort of the combined row set. `a` rows win ties, so merging
    /// an older run with a newer one keeps arrival order among duplicate
    /// `(group, hour, machine)` keys.
    pub(crate) fn merge(a: &ColumnIndex, b: &ColumnIndex) -> ColumnIndex {
        if a.sorted.is_empty() {
            return b.clone();
        }
        if b.sorted.is_empty() {
            return a.clone();
        }
        let (an, bn) = (a.sorted.len(), b.sorted.len());
        let n = an + bn;

        // Primary merge by (group, hour, machine): records, plus the
        // source of every output row so columns and permutations can be
        // gathered without re-comparing.
        let key = |r: &MachineHourRecord| (r.group, r.hour, r.machine);
        let mut sorted = Vec::with_capacity(n);
        // from_b[out] says which side output row `out` came from;
        // a_to_out/b_to_out map each side's row to its output position.
        let mut from_b = Vec::with_capacity(n);
        let mut a_to_out = vec![0usize; an];
        let mut b_to_out = vec![0usize; bn];
        let (mut i, mut j) = (0usize, 0usize);
        while i < an || j < bn {
            let take_a = j >= bn || (i < an && key(&a.sorted[i]) <= key(&b.sorted[j]));
            if take_a {
                a_to_out[i] = sorted.len();
                sorted.push(a.sorted[i]);
                i += 1;
            } else {
                b_to_out[j] = sorted.len();
                sorted.push(b.sorted[j]);
                j += 1;
            }
            from_b.push(!take_a);
        }

        let (groups, group_offsets) = group_runs(&sorted);

        // Machine space: merge-dedup the two distinct lists, then remap
        // each side's dense ids into the merged space.
        let machines = merge_dedup(&a.machines, &b.machines);
        let a_remap = remap_into(&a.machines, &machines);
        let b_remap = remap_into(&b.machines, &machines);
        let mut machine_dense = Vec::with_capacity(n);
        let (mut i, mut j) = (0usize, 0usize);
        for &fb in &from_b {
            if fb {
                machine_dense.push(b_remap[b.machine_dense[j] as usize]);
                j += 1;
            } else {
                machine_dense.push(a_remap[a.machine_dense[i] as usize]);
                i += 1;
            }
        }

        // Metric columns: gather in output order, one side cursor each.
        let mut columns = Vec::with_capacity(Metric::ALL.len());
        for (ac, bc) in a.columns.iter().zip(&b.columns) {
            let mut col = Vec::with_capacity(n);
            let (mut i, mut j) = (0usize, 0usize);
            for &fb in &from_b {
                if fb {
                    col.push(bc[j]);
                    j += 1;
                } else {
                    col.push(ac[i]);
                    i += 1;
                }
            }
            columns.push(col);
        }

        // Secondary orderings: each side's permutation is already sorted
        // by the secondary key, so the merged permutation is a two-way
        // merge mapped through the row position maps.
        let hour_order = merge_permutation(
            a, b, &a.hour_order, &b.hour_order, &a_to_out, &b_to_out,
            |idx, row| (idx.sorted[row].hour, idx.sorted[row].machine),
        );
        let (hours, hour_offsets) = hour_runs(&sorted, &hour_order);

        let machine_order = merge_permutation(
            a, b, &a.machine_order, &b.machine_order, &a_to_out, &b_to_out,
            |idx, row| (idx.sorted[row].machine.0 as u64, idx.sorted[row].hour),
        );
        let machine_offsets = machine_offsets_of(&machine_dense, &machine_order, machines.len());

        ColumnIndex {
            sorted,
            groups,
            group_offsets,
            machines,
            machine_dense,
            hours,
            hour_order,
            hour_offsets,
            machine_order,
            machine_offsets,
            columns,
        }
    }

    /// Compacts any number of sealed indexes, oldest first, into one.
    /// Earlier sides win ties throughout, so duplicate keys keep arrival
    /// order across the whole ladder. Implemented as a left fold of the
    /// stable two-way [`ColumnIndex::merge`]: with `k` sides of `n`
    /// total rows both the fold and a cursor-scan k-way merge cost
    /// `O(n·k)` comparisons, and the fold reuses the one merge kernel
    /// the invariants are proven on.
    pub(crate) fn merge_many(sides: &[&ColumnIndex]) -> ColumnIndex {
        let mut nonempty = sides.iter().filter(|s| !s.sorted.is_empty());
        let Some(&first) = nonempty.next() else {
            return empty_index().clone();
        };
        let mut acc: Option<ColumnIndex> = None;
        for &s in nonempty {
            acc = Some(match &acc {
                None => ColumnIndex::merge(first, s),
                Some(a) => ColumnIndex::merge(a, s),
            });
        }
        acc.unwrap_or_else(|| first.clone())
    }

    /// Row range of one group in `sorted`, empty when absent.
    pub(crate) fn group_range(&self, group: GroupKey) -> Range<usize> {
        let gi = self.groups.partition_point(|g| *g < group);
        if self.groups.get(gi) == Some(&group) {
            self.group_offsets[gi]..self.group_offsets[gi + 1]
        } else {
            0..0
        }
    }

    /// Position range in `hour_order` covering hours `[start, end)`.
    pub(crate) fn hour_position_range(&self, start: u64, end: u64) -> Range<usize> {
        let lo = self.hours.partition_point(|&h| h < start);
        let hi = self.hours.partition_point(|&h| h < end);
        self.hour_offsets[lo]..self.hour_offsets[hi]
    }

    /// Dense id of `machine`, if present.
    fn dense_machine(&self, machine: MachineId) -> Option<usize> {
        let mi = self.machines.partition_point(|m| *m < machine);
        (self.machines.get(mi) == Some(&machine)).then_some(mi)
    }

    /// One contiguous metric column slice for a group.
    pub(crate) fn group_column(&self, group: GroupKey, metric: Metric) -> &[f64] {
        &self.columns[metric.index()][self.group_range(group)]
    }

    /// One group's records, sorted by `(hour, machine)`.
    pub(crate) fn group_rows(&self, group: GroupKey) -> std::slice::Iter<'_, MachineHourRecord> {
        self.sorted[self.group_range(group)].iter()
    }

    /// One machine's records, sorted by hour.
    pub(crate) fn machine_rows(
        &self,
        machine: MachineId,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        let range = match self.dense_machine(machine) {
            Some(dense) => self.machine_offsets[dense]..self.machine_offsets[dense + 1],
            None => 0..0,
        };
        self.machine_order[range]
            .iter()
            .map(move |&row| &self.sorted[row])
    }

    /// Records within `[start, end)` hours, sorted by `(hour, machine)`.
    pub(crate) fn hour_window(
        &self,
        start: u64,
        end: u64,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        self.hour_order[self.hour_position_range(start, end)]
            .iter()
            .map(move |&row| &self.sorted[row])
    }

    /// Records of a machine set within `[start, end)` hours, sorted by
    /// `(hour, machine)`; membership is one dense-id bitmap probe per
    /// candidate row.
    pub(crate) fn machines_hour_window(
        &self,
        machines: &BTreeSet<MachineId>,
        start: u64,
        end: u64,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        let bitmap = MachineBitmap::from_set(self, machines);
        self.hour_order[self.hour_position_range(start, end)]
            .iter()
            .filter(move |&&row| bitmap.contains(self.machine_dense[row]))
            .map(move |&row| &self.sorted[row])
    }
}

/// Distinct-group list and CSR offsets of group-major sorted records.
fn group_runs(sorted: &[MachineHourRecord]) -> (Vec<GroupKey>, Vec<usize>) {
    let mut groups = Vec::new();
    let mut offsets = vec![0];
    for (row, r) in sorted.iter().enumerate() {
        if groups.last() != Some(&r.group) {
            if !groups.is_empty() {
                offsets.push(row);
            }
            groups.push(r.group);
        }
    }
    offsets.push(sorted.len());
    if groups.is_empty() {
        offsets = vec![0];
    }
    (groups, offsets)
}

/// Distinct-hour list and CSR offsets of an `(hour, machine)`-ordered
/// row permutation.
fn hour_runs(sorted: &[MachineHourRecord], hour_order: &[usize]) -> (Vec<u64>, Vec<usize>) {
    let mut hours = Vec::new();
    let mut offsets = vec![0];
    for (pos, &row) in hour_order.iter().enumerate() {
        let h = sorted[row].hour;
        if hours.last() != Some(&h) {
            if !hours.is_empty() {
                offsets.push(pos);
            }
            hours.push(h);
        }
    }
    offsets.push(hour_order.len());
    if hours.is_empty() {
        offsets = vec![0];
    }
    (hours, offsets)
}

/// CSR offsets per dense machine id of a `(machine, hour)`-ordered
/// permutation (counting pass, no comparison).
fn machine_offsets_of(machine_dense: &[u32], machine_order: &[usize], n_machines: usize) -> Vec<usize> {
    let mut offsets = vec![0; n_machines + 1];
    for &row in machine_order {
        offsets[machine_dense[row] as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    offsets
}

/// Merge two sorted, deduplicated key lists into one.
pub(crate) fn merge_dedup<T: Copy + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    i += 1;
                    if x == y {
                        j += 1;
                    }
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        out.push(next);
    }
    out
}

/// For each element of sorted `sub` (a subset of sorted `all`), its
/// position in `all` — the dense-id remap table of a merge.
pub(crate) fn remap_into(sub: &[MachineId], all: &[MachineId]) -> Vec<u32> {
    let mut out = Vec::with_capacity(sub.len());
    let mut pos = 0usize;
    for &m in sub {
        while all.get(pos).is_some_and(|&x| x < m) {
            pos += 1;
        }
        out.push(pos as u32);
    }
    out
}

/// Merge two secondary-key-ordered row permutations into one over the
/// merged row space: compare by `key` on each side's own index, map
/// through the row position maps. `a` wins ties (older before newer).
fn merge_permutation<K: Ord>(
    a: &ColumnIndex,
    b: &ColumnIndex,
    a_order: &[usize],
    b_order: &[usize],
    a_to_out: &[usize],
    b_to_out: &[usize],
    key: impl Fn(&ColumnIndex, usize) -> K,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(a_order.len() + b_order.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_order.len() || j < b_order.len() {
        let take_a = j >= b_order.len()
            || (i < a_order.len() && key(a, a_order[i]) <= key(b, b_order[j]));
        if take_a {
            out.push(a_to_out[a_order[i]]);
            i += 1;
        } else {
            out.push(b_to_out[b_order[j]]);
            j += 1;
        }
    }
    out
}

/// Key-ordered k-way merge of per-side views, each sorted by
/// `(hour, machine)`. The earliest side wins ties, so passing sides
/// oldest-run-first (delta last) keeps arrival order among duplicate
/// keys — the same contract the two-run store upheld.
fn merge_k_by_hour_machine<'a, I>(sides: Vec<I>) -> impl Iterator<Item = &'a MachineHourRecord>
where
    I: Iterator<Item = &'a MachineHourRecord> + 'a,
{
    let mut sides: Vec<std::iter::Peekable<I>> =
        sides.into_iter().map(|s| s.peekable()).collect();
    std::iter::from_fn(move || {
        let mut best: Option<(usize, (u64, MachineId))> = None;
        for (i, side) in sides.iter_mut().enumerate() {
            if let Some(r) = side.peek() {
                let k = (r.hour, r.machine);
                if best.as_ref().is_none_or(|&(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        let (i, _) = best?;
        sides.get_mut(i)?.next()
    })
}

/// A set-membership bitmap over dense machine ids — the probe structure
/// behind [`TelemetryStore::by_machines_and_hours`]. One bit per distinct
/// machine in the window, so a 64k-machine fleet fits in 8 KiB.
struct MachineBitmap {
    words: Vec<u64>,
}

impl MachineBitmap {
    fn from_set(index: &ColumnIndex, machines: &BTreeSet<MachineId>) -> Self {
        let mut words = vec![0u64; index.machines.len().div_ceil(64)];
        for &m in machines {
            if let Some(dense) = index.dense_machine(m) {
                words[dense / 64] |= 1 << (dense % 64);
            }
        }
        MachineBitmap { words }
    }

    #[inline]
    fn contains(&self, dense: u32) -> bool {
        let dense = dense as usize;
        (self.words[dense / 64] >> (dense % 64)) & 1 == 1
    }
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a durable store rooted at directory `dir`, creating it on
    /// first use and recovering its contents otherwise: the manifest
    /// names the live segments with their row counts and hour bounds,
    /// each segment's header is validated (bodies decode lazily on
    /// first query), and the write-ahead log is replayed into the delta
    /// tail, truncating any torn tail a crash left behind. Manifests
    /// from before hour bounds existed (v1) open too — their segments
    /// load eagerly and the next sync upgrades the directory.
    /// Corruption surfaces as a typed [`persist::PersistError`] —
    /// recovery never panics.
    ///
    /// Note that recovery restores the *record multiset*, not the
    /// original insertion order: sealed runs come back in
    /// `(group, hour, machine)` order (segments store them pre-sorted),
    /// while the delta tail keeps exact append order. Every view and
    /// kernel is order-insensitive, so query results are unchanged.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self, persist::PersistError> {
        let recovered = persist::recover(dir.as_ref())?;
        let runs = recovered
            .runs
            .into_iter()
            .map(|r| {
                let cell = OnceLock::new();
                if let Some(index) = r.index {
                    let _ = cell.set(index);
                }
                SealedRun {
                    rows: r.rows,
                    bounds: r.bounds,
                    seg: Some(r.name),
                    index: cell,
                    touch: AtomicU64::new(0),
                }
            })
            .collect();
        Ok(TelemetryStore {
            runs,
            tail: recovered.delta,
            delta: OnceLock::new(),
            backing: Some(recovered.backing),
            ..TelemetryStore::default()
        })
    }

    /// Flushes every record appended since the last `sync` to stable
    /// storage and returns what was written. On the fast path this is
    /// one WAL frame and one fsync; when the run set changed (a seal or
    /// compaction) it spills each *dirty* run as a fresh segment —
    /// unchanged segments are never rewritten — starts a fresh WAL
    /// holding only the delta tail, and atomically flips the manifest.
    /// Runs below [`MIN_SEGMENT_ROWS`] are first folded into their
    /// neighbours (the sync-time compaction policy), and decoded
    /// segment runs beyond the cache budget are evicted after.
    ///
    /// Records are durable — guaranteed to survive a crash or kill —
    /// only once `sync` returns `Ok`. A failed sync may be retried and
    /// never duplicates records. `push`/`extend`/`seal` never touch
    /// disk. Returns [`persist::PersistError::NotDurable`] on a store
    /// that was not created by [`TelemetryStore::open`], and refuses
    /// (with the original diagnosis) on a store degraded by a corrupt
    /// segment, so a partial in-memory image never overwrites history.
    pub fn sync(&mut self) -> Result<persist::SyncStats, persist::PersistError> {
        if let Some(err) = self.degraded_error() {
            return Err(err);
        }
        if self.backing.is_none() {
            return Err(persist::PersistError::NotDurable);
        }
        self.policy_compact();
        // A policy merge may itself have tripped a lazy load failure.
        if let Some(err) = self.degraded_error() {
            return Err(err);
        }
        let refs: Vec<persist::RunRef<'_>> = self
            .runs
            .iter()
            .map(|r| match (&r.seg, r.index.get()) {
                (Some(name), _) => persist::RunRef::Clean {
                    name,
                    rows: r.rows as u64,
                    bounds: r.bounds,
                },
                (None, Some(index)) => persist::RunRef::Dirty { index },
                // Unreachable by invariant (dirty runs are resident);
                // an empty side is simply skipped by the rotation.
                (None, None) => persist::RunRef::Dirty { index: empty_index() },
            })
            .collect();
        let Some(backing) = self.backing.as_mut() else {
            return Err(persist::PersistError::NotDurable);
        };
        let (stats, assigned) = backing.sync(&refs, &self.tail)?;
        drop(refs);
        for (run, name) in self.runs.iter_mut().zip(assigned) {
            if let Some(name) = name {
                run.seg = Some(name);
            }
        }
        self.evict_cold();
        Ok(stats)
    }

    /// True when this store is attached to a directory and
    /// [`sync`](TelemetryStore::sync) will persist.
    pub fn is_durable(&self) -> bool {
        self.backing.is_some()
    }

    /// The directory backing this store, if durable.
    pub fn storage_dir(&self) -> Option<&std::path::Path> {
        self.backing.as_ref().map(|b| b.dir())
    }

    /// Forces every run resident and reports the first segment-load
    /// failure, if any — the explicit "is my history intact?" check.
    /// Queries on a degraded store serve the surviving runs (the bad
    /// segment is quarantined and its run reads as empty); this is how
    /// a caller distinguishes that state from a clean one.
    pub fn verify(&self) -> Result<(), persist::PersistError> {
        for run in &self.runs {
            let _ = self.run_side(run);
        }
        match self.degraded_error() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Number of sealed runs currently live.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of sealed runs with a decoded index resident in memory —
    /// what hour-bound pruning and the LRU cache actually bound.
    pub fn resident_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.index.get().is_some()).count()
    }

    /// Caps how many decoded segment-backed runs stay resident across
    /// [`sync`](TelemetryStore::sync) calls (minimum 1), evicting the
    /// coldest immediately if over. Dirty (not-yet-persisted) runs are
    /// never evicted — disk holds nothing to reload them from.
    pub fn set_segment_cache_limit(&mut self, limit: usize) {
        self.cache_limit = limit.max(1);
        self.evict_cold();
    }

    /// Appends one record into the delta buffer. The sealed runs are
    /// left untouched; only the delta mini-index is invalidated.
    /// Non-finite metric blocks are rejected by debug assertion — the
    /// simulator must never emit them (CSV ingest checks them with a
    /// typed error instead, see [`crate::csv`]). Seals when the delta
    /// outgrows its threshold.
    pub fn push(&mut self, record: MachineHourRecord) {
        debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
        self.delta.take();
        self.tail.push(record);
        self.maybe_compact();
    }

    /// Appends many records as one batch: the seal threshold is checked
    /// once per call, so a bulk load seals at most once.
    pub fn extend(&mut self, records: impl IntoIterator<Item = MachineHourRecord>) {
        self.delta.take();
        for record in records {
            debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
            self.tail.push(record);
        }
        self.maybe_compact();
    }

    /// Appends a batch like [`extend`](TelemetryStore::extend), but with
    /// the non-finite validation CSV ingest applies enforced in *every*
    /// build profile: records carrying a NaN or infinite metric are
    /// dropped and counted instead of debug-asserted. Returns the number
    /// of records rejected (zero for any healthy producer).
    ///
    /// This is the ingest path for machine-generated record streams — the
    /// simulator flushes through it — where a debug-only assertion would
    /// let a poisoned metric (e.g. a lognormal sampler overflowing to
    /// `inf` under a degenerate calibration) slip into release-mode
    /// stores and surface later as NaN aggregates.
    pub fn extend_validated(
        &mut self,
        records: impl IntoIterator<Item = MachineHourRecord>,
    ) -> usize {
        self.delta.take();
        let mut dropped = 0usize;
        for record in records {
            if record.metrics.is_finite() {
                self.tail.push(record);
            } else {
                dropped += 1;
            }
        }
        self.maybe_compact();
        dropped
    }

    /// Merges another store into this one (e.g. combining experiment and
    /// control windows collected separately). Routed through the same
    /// batch append — and therefore the same non-finite validation — as
    /// [`extend`](TelemetryStore::extend).
    pub fn merge(&mut self, other: TelemetryStore) {
        let TelemetryStore { runs, tail, .. } = other;
        for run in &runs {
            // Detach the other store's sealed rows back into record
            // form; its runs are resident or reloadable via its own
            // backing, which `runs` still references nothing of — a
            // run without a resident index here can only come from a
            // durable store, whose records were sealed after passing
            // validation on their way in.
            if let Some(index) = run.index.get() {
                self.extend(index.sorted.iter().copied());
            }
        }
        self.extend(tail);
    }

    /// Reserves capacity for at least `additional` more records, so a
    /// streaming ingest loop that knows its batch size can avoid
    /// reallocating the record log mid-append.
    pub fn reserve(&mut self, additional: usize) {
        self.tail.reserve(additional);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|r| r.rows).sum::<usize>() + self.tail.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.tail.is_empty()
    }

    /// Seals the delta into a new run now, then ladder-compacts. A
    /// no-op when the delta is empty. Queries never require this — they
    /// k-way merge runs + delta on the fly — so calling it only moves
    /// the indexing cost to a chosen point (e.g. right after a
    /// simulation flush, before a timed analysis path).
    pub fn seal(&mut self) {
        if !self.tail.is_empty() {
            self.seal_tail();
        }
    }

    /// True when every record is sealed into a run (no append since the
    /// last seal).
    pub fn is_sealed(&self) -> bool {
        self.tail.is_empty()
    }

    /// Number of records currently sitting in the delta buffer.
    pub fn delta_len(&self) -> usize {
        self.tail.len()
    }

    /// Merges every run (and the delta) into a single sealed run, then
    /// re-splits nothing: the explicit full-compaction entry point.
    /// More usefully, between the extremes it k-way merges *adjacent
    /// clusters* of runs whose hour bounds overlap — overlap defeats
    /// window pruning — or that are undersized. Crash-safe: the merge
    /// is in-memory and the next [`sync`](TelemetryStore::sync) commits
    /// it under the manifest-flip protocol, so a crash at any point
    /// leaves the previous on-disk state intact.
    pub fn compact_segments(&mut self) {
        self.seal();
        let mut i = 0;
        while i + 1 < self.runs.len() {
            // Extend a cluster while the next run overlaps the running
            // bounds union or sits below the size floor.
            let mut bounds = self.runs[i].bounds;
            let mut end = i + 1;
            while end < self.runs.len() {
                let nb = self.runs[end].bounds;
                let overlap = nb.0 <= bounds.1 && bounds.0 <= nb.1;
                let undersized = self.runs[end].rows < MIN_SEGMENT_ROWS
                    || self.runs[end - 1].rows < MIN_SEGMENT_ROWS;
                if !overlap && !undersized {
                    break;
                }
                bounds = (bounds.0.min(nb.0), bounds.1.max(nb.1));
                end += 1;
            }
            if end - i >= 2 {
                self.merge_at(i, end - i);
            }
            i += 1;
        }
    }

    /// Seals when the delta exceeds its floor — large enough that the
    /// `O(d log d)` index build amortizes, small enough that query-time
    /// merges stay narrow. Sealing is in-memory only; the ladder bounds
    /// how many runs accumulate.
    fn maybe_compact(&mut self) {
        if self.tail.len() > MIN_COMPACT_DELTA {
            self.seal_tail();
        }
    }

    /// Turns the delta into a new sealed run (reusing a query-built
    /// mini-index when present) and restores the ladder invariant.
    fn seal_tail(&mut self) {
        let delta = self
            .delta
            .take()
            .unwrap_or_else(|| ColumnIndex::build(&self.tail));
        self.tail.clear();
        let Some(bounds) = delta.hours.first().copied().zip(delta.hours.last().copied())
        else {
            return; // Empty delta: nothing to seal.
        };
        self.runs.push(SealedRun::dirty(delta, bounds));
        self.ladder_compact();
    }

    /// Binary-counter compaction: merge the two newest runs while the
    /// elder of the pair is no larger than the newcomer. Each record is
    /// re-merged `O(log n)` times over the store's lifetime, and a
    /// large old run is only rewritten when the history behind it has
    /// grown to its own size.
    fn ladder_compact(&mut self) {
        while self.runs.len() >= 2 {
            let at = self.runs.len() - 2;
            if self.runs[at].rows > self.runs[at + 1].rows {
                break;
            }
            self.merge_at(at, 2);
        }
    }

    /// Sync-time policy: fold adjacent pairs of undersized runs so the
    /// manifest never accumulates confetti segments. Only pairs where
    /// *both* runs are below the floor merge here — rewriting a large
    /// clean segment to absorb a small one would break the bounded
    /// write-amplification guarantee (that rewrite is what the ladder
    /// schedules logarithmically, and what
    /// [`TelemetryStore::compact_segments`] offers explicitly).
    fn policy_compact(&mut self) {
        loop {
            let pair = (0..self.runs.len().saturating_sub(1)).find(|&i| {
                self.runs[i].rows < MIN_SEGMENT_ROWS && self.runs[i + 1].rows < MIN_SEGMENT_ROWS
            });
            match pair {
                Some(at) => self.merge_at(at, 2),
                None => break,
            }
        }
    }

    /// Replaces `runs[at..at + count]` with their k-way merge (a dirty
    /// run), preserving order. Rebuilds the vector without
    /// panic-capable splicing.
    fn merge_at(&mut self, at: usize, count: usize) {
        let old = std::mem::take(&mut self.runs);
        let mut head = Vec::with_capacity(old.len());
        let mut cluster = Vec::with_capacity(count);
        let mut rest = Vec::new();
        for (i, run) in old.into_iter().enumerate() {
            if i < at {
                head.push(run);
            } else if i < at + count {
                cluster.push(run);
            } else {
                rest.push(run);
            }
        }
        let merged = {
            let sides: Vec<&ColumnIndex> = cluster.iter().map(|r| self.run_side(r)).collect();
            ColumnIndex::merge_many(&sides)
        };
        self.runs = head;
        if let Some(bounds) = merged.hours.first().copied().zip(merged.hours.last().copied()) {
            self.runs.push(SealedRun::dirty(merged, bounds));
        }
        self.runs.append(&mut rest);
    }

    /// The decoded index of one run, loading it from its segment on
    /// first touch and stamping the LRU clock. A load failure marks the
    /// store degraded and serves the run as empty — queries stay
    /// infallible; [`TelemetryStore::verify`] surfaces the diagnosis.
    fn run_side<'a>(&'a self, run: &'a SealedRun) -> &'a ColumnIndex {
        run.touch.store(
            self.touch_clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        run.index.get_or_init(|| {
            let loaded = match (&self.backing, &run.seg) {
                (Some(backing), Some(name)) => {
                    match persist::segment::load_segment(
                        backing.dir(),
                        name,
                        run.rows as u64,
                        Some(run.bounds),
                    ) {
                        Ok(index) => Some(index),
                        Err(err) => {
                            self.note_degraded(&err);
                            None
                        }
                    }
                }
                // Unreachable by invariant (a run without a segment is
                // always resident); serve empty rather than panic.
                _ => None,
            };
            loaded.unwrap_or_else(|| empty_index().clone())
        })
    }

    /// Records the first load failure; later ones keep the original
    /// diagnosis (the first corruption found is the actionable one).
    fn note_degraded(&self, err: &persist::PersistError) {
        let mut slot = self.degraded.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            let (path, reason) = match err {
                persist::PersistError::Corrupt { path, reason } => (path.clone(), reason.clone()),
                persist::PersistError::Io { op, path, source } => {
                    (path.clone(), format!("{op}: {source}"))
                }
                other => (PathBuf::new(), other.to_string()),
            };
            *slot = Some((path, reason));
        }
    }

    /// The sticky degradation, reconstructed as a typed error.
    /// (`PersistError` holds an `io::Error` and is not `Clone`; the
    /// stored diagnosis is re-wrapped on each read.)
    fn degraded_error(&self) -> Option<persist::PersistError> {
        self.degraded
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|(path, reason)| persist::PersistError::Corrupt {
                path: path.clone(),
                reason: reason.clone(),
            })
    }

    /// Evicts the coldest decoded segment-backed runs down to the cache
    /// budget. Dirty runs are exempt (they are the only copy). Touch
    /// stamps are collected then sorted — never compared in-place as a
    /// gate — so Relaxed ordering is sufficient.
    fn evict_cold(&mut self) {
        let mut resident: Vec<(u64, usize)> = self
            .runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.seg.is_some() && r.index.get().is_some())
            .map(|(i, r)| (r.touch.load(Ordering::Relaxed), i))
            .collect();
        if resident.len() <= self.cache_limit {
            return;
        }
        resident.sort_unstable();
        let over = resident.len() - self.cache_limit;
        for &(_, i) in resident.iter().take(over) {
            if let Some(run) = self.runs.get_mut(i) {
                run.index.take();
            }
        }
    }

    /// The delta mini-index, built on first use per mutation generation;
    /// `None` when the store is fully sealed.
    pub(crate) fn delta_index(&self) -> Option<&ColumnIndex> {
        if self.tail.is_empty() {
            return None;
        }
        Some(self.delta.get_or_init(|| ColumnIndex::build(&self.tail)))
    }

    /// Every sorted side of the store, oldest run first, delta last —
    /// the merge inputs of the unwindowed views and kernels.
    pub(crate) fn sides(&self) -> Vec<&ColumnIndex> {
        let mut out: Vec<&ColumnIndex> = self.runs.iter().map(|r| self.run_side(r)).collect();
        if let Some(delta) = self.delta_index() {
            out.push(delta);
        }
        out
    }

    /// The sides that can contain hours `[start, end)`: runs whose
    /// recorded `[min_hour, max_hour]` intersects the window (others
    /// are skipped *without decoding their segments* — the pruning this
    /// store exists for), plus the delta. Oldest first, delta last.
    pub(crate) fn window_sides(&self, start: u64, end: u64) -> Vec<&ColumnIndex> {
        let mut out: Vec<&ColumnIndex> = Vec::with_capacity(self.runs.len() + 1);
        if end > start {
            for r in &self.runs {
                if r.bounds.0 < end && r.bounds.1 >= start {
                    out.push(self.run_side(r));
                }
            }
        }
        if let Some(delta) = self.delta_index() {
            out.push(delta);
        }
        out
    }

    /// All records: each sealed run's rows (oldest run first, each in
    /// its sorted order), then the delta tail in insertion order. On a
    /// never-sealed store this is exactly insertion order; once runs
    /// exist the global insertion order is no longer recorded (views
    /// and kernels are order-insensitive; see
    /// [`TelemetryStore::open`]).
    pub fn iter(&self) -> impl Iterator<Item = &MachineHourRecord> {
        self.runs
            .iter()
            .flat_map(move |r| self.run_side(r).sorted.iter())
            .chain(self.tail.iter())
    }

    /// Records for one machine group, sorted by `(hour, machine)` — a
    /// k-way merge of per-run slices and the delta slice.
    pub fn by_group(&self, group: GroupKey) -> impl Iterator<Item = &MachineHourRecord> {
        merge_k_by_hour_machine(
            self.sides().into_iter().map(|s| s.group_rows(group)).collect(),
        )
    }

    /// Records for one machine, sorted by hour.
    pub fn by_machine(&self, machine: MachineId) -> impl Iterator<Item = &MachineHourRecord> {
        merge_k_by_hour_machine(
            self.sides().into_iter().map(|s| s.machine_rows(machine)).collect(),
        )
    }

    /// Records within `[start_hour, end_hour)`, sorted by
    /// `(hour, machine)`. Runs whose hour bounds miss the window are
    /// skipped without touching their segments.
    pub fn by_hours(
        &self,
        start_hour: u64,
        end_hour: u64,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        merge_k_by_hour_machine(
            self.window_sides(start_hour, end_hour)
                .into_iter()
                .map(|s| s.hour_window(start_hour, end_hour))
                .collect(),
        )
    }

    /// Records for a set of machines within `[start_hour, end_hour)` —
    /// the shape of a flighting measurement query. Hour-bound pruning
    /// first, then the hour range is an index probe on each surviving
    /// side and machine membership is one bitmap test per candidate row
    /// (dense ids, no `BTreeSet` lookup per record).
    pub fn by_machines_and_hours<'a>(
        &'a self,
        machines: &BTreeSet<MachineId>,
        start_hour: u64,
        end_hour: u64,
    ) -> impl Iterator<Item = &'a MachineHourRecord> {
        merge_k_by_hour_machine(
            self.window_sides(start_hour, end_hour)
                .into_iter()
                .map(|s| s.machines_hour_window(machines, start_hour, end_hour))
                .collect(),
        )
    }

    /// The distinct machine groups present, sorted.
    pub fn groups(&self) -> Vec<GroupKey> {
        self.sides()
            .into_iter()
            .fold(Vec::new(), |acc, s| merge_dedup(&acc, &s.groups))
    }

    /// The distinct machines present, sorted.
    pub fn machines(&self) -> Vec<MachineId> {
        self.sides()
            .into_iter()
            .fold(Vec::new(), |acc, s| merge_dedup(&acc, &s.machines))
    }

    /// Inclusive-exclusive hour span `(min, max+1)` covered by the
    /// store, or `None` when empty. O(runs) over the recorded bounds —
    /// no segment is decoded — and the delta contributes an O(1) read
    /// when its mini-index is built or a single min/max pass over the
    /// (small) buffer when not; this never forces an index build.
    pub fn hour_span(&self) -> Option<(u64, u64)> {
        let runs_span = self.runs.iter().fold(None, |acc, r| match acc {
            None => Some(r.bounds),
            Some((lo, hi)) => Some((lo.min(r.bounds.0), hi.max(r.bounds.1))),
        });
        let delta_span = match self.delta.get() {
            Some(delta) => delta
                .hours
                .first()
                .zip(delta.hours.last())
                .map(|(&lo, &hi)| (lo, hi)),
            None => self
                .tail
                .iter()
                .map(|r| r.hour)
                .fold(None, |acc, h| match acc {
                    None => Some((h, h)),
                    Some((lo, hi)) => Some((lo.min(h), hi.max(h))),
                }),
        };
        match (runs_span, delta_span) {
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d) + 1)),
            (Some((a, b)), None) | (None, Some((a, b))) => Some((a, b + 1)),
            (None, None) => None,
        }
    }
}

/// The pre-columnar flat store, preserved verbatim as an executable
/// specification. Every view is an O(N) scan with a per-record predicate
/// and every distinct-set query materializes a `BTreeSet` — exactly what
/// the run+delta engine replaces. The randomized agreement suite
/// (`tests/agreement.rs`) pins the two implementations to identical views
/// and 1e-9-identical aggregates at every intermediate state of
/// interleaved mutate/query sequences; the `telemetry_scan` and
/// `telemetry_stream` benches measure the speedup against it.
pub mod reference {
    use crate::record::{GroupKey, MachineHourRecord, MachineId};
    use std::collections::BTreeSet;

    /// Append-only store of machine-hour records (flat-scan reference).
    #[derive(Debug, Clone, Default)]
    pub struct TelemetryStore {
        records: Vec<MachineHourRecord>,
    }

    impl TelemetryStore {
        /// Creates an empty store.
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends one record.
        pub fn push(&mut self, record: MachineHourRecord) {
            debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
            self.records.push(record);
        }

        /// Appends many records.
        pub fn extend(&mut self, records: impl IntoIterator<Item = MachineHourRecord>) {
            for r in records {
                self.push(r);
            }
        }

        /// Number of records.
        pub fn len(&self) -> usize {
            self.records.len()
        }

        /// True when empty.
        pub fn is_empty(&self) -> bool {
            self.records.is_empty()
        }

        /// All records, in insertion order.
        pub fn iter(&self) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter()
        }

        /// Records for one machine group (predicate scan).
        pub fn by_group(&self, group: GroupKey) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter().filter(move |r| r.group == group)
        }

        /// Records for one machine (predicate scan).
        pub fn by_machine(&self, machine: MachineId) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter().filter(move |r| r.machine == machine)
        }

        /// Records within `[start_hour, end_hour)` (predicate scan).
        pub fn by_hours(
            &self,
            start_hour: u64,
            end_hour: u64,
        ) -> impl Iterator<Item = &MachineHourRecord> {
            self.records
                .iter()
                .filter(move |r| r.hour >= start_hour && r.hour < end_hour)
        }

        /// Records for a set of machines within `[start_hour, end_hour)`
        /// (predicate scan with a `BTreeSet::contains` per record).
        pub fn by_machines_and_hours<'a>(
            &'a self,
            machines: &'a BTreeSet<MachineId>,
            start_hour: u64,
            end_hour: u64,
        ) -> impl Iterator<Item = &'a MachineHourRecord> {
            self.records.iter().filter(move |r| {
                r.hour >= start_hour && r.hour < end_hour && machines.contains(&r.machine)
            })
        }

        /// The distinct machine groups present, sorted.
        pub fn groups(&self) -> Vec<GroupKey> {
            let set: BTreeSet<GroupKey> = self.records.iter().map(|r| r.group).collect();
            set.into_iter().collect()
        }

        /// The distinct machines present, sorted.
        pub fn machines(&self) -> Vec<MachineId> {
            let set: BTreeSet<MachineId> = self.records.iter().map(|r| r.machine).collect();
            set.into_iter().collect()
        }

        /// Inclusive-exclusive hour span `(min, max+1)` covered by the
        /// store, or `None` when empty (two-pass, as shipped).
        pub fn hour_span(&self) -> Option<(u64, u64)> {
            let min = self.records.iter().map(|r| r.hour).min()?;
            let max = self.records.iter().map(|r| r.hour).max()?;
            Some((min, max + 1))
        }

        /// Merges another store into this one, routed through
        /// [`extend`](TelemetryStore::extend) so merged records face the
        /// same non-finite validation as pushed ones.
        pub fn merge(&mut self, other: TelemetryStore) {
            self.extend(other.records);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::record::{MetricValues, ScId, SkuId};

        /// Regression twin of the columnar store's test: the reference
        /// `merge` must apply the same non-finite validation as `push`.
        #[test]
        #[cfg(debug_assertions)]
        #[should_panic(expected = "non-finite telemetry emitted")]
        fn merge_rejects_non_finite_records() {
            let bad_record = MachineHourRecord {
                machine: MachineId(1),
                group: GroupKey::new(SkuId(0), ScId(0)),
                hour: 0,
                metrics: MetricValues {
                    cpu_utilization: f64::INFINITY,
                    ..Default::default()
                },
            };
            let bad = TelemetryStore {
                records: vec![bad_record],
            };
            let mut store = TelemetryStore::new();
            store.merge(bad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetricValues, ScId, SkuId};

    fn rec(machine: u32, sku: u16, hour: u64, cpu: f64) -> MachineHourRecord {
        MachineHourRecord {
            machine: MachineId(machine),
            group: GroupKey::new(SkuId(sku), ScId(0)),
            hour,
            metrics: MetricValues {
                cpu_utilization: cpu,
                ..Default::default()
            },
        }
    }

    /// The single run of a store known to have exactly one — panics (in
    /// tests only) otherwise, which is itself the assertion.
    fn single_run(store: &TelemetryStore) -> &ColumnIndex {
        assert_eq!(store.runs.len(), 1, "expected exactly one sealed run");
        store.run_side(&store.runs[0])
    }

    #[test]
    fn push_and_filters() {
        let mut store = TelemetryStore::new();
        store.push(rec(1, 0, 0, 10.0));
        store.push(rec(1, 0, 1, 20.0));
        store.push(rec(2, 1, 0, 30.0));
        assert_eq!(store.len(), 3);
        assert_eq!(store.by_machine(MachineId(1)).count(), 2);
        assert_eq!(
            store.by_group(GroupKey::new(SkuId(1), ScId(0))).count(),
            1
        );
        assert_eq!(store.by_hours(0, 1).count(), 2);
        assert_eq!(store.by_hours(1, 2).count(), 1);
    }

    #[test]
    fn extend_validated_rejects_non_finite_in_all_profiles() {
        let mut store = TelemetryStore::new();
        // Plain `extend` only debug-asserts; `extend_validated` must
        // reject these even in release builds.
        let dropped = store.extend_validated(vec![
            rec(1, 0, 0, 10.0),
            rec(1, 0, 1, f64::NAN),
            rec(1, 0, 2, f64::INFINITY),
            rec(2, 0, 0, 20.0),
        ]);
        assert_eq!(dropped, 2);
        assert_eq!(store.len(), 2);
        assert!(store.iter().all(|r| r.metrics.is_finite()));
        // Clean batches pass through untouched.
        assert_eq!(store.extend_validated(vec![rec(3, 0, 0, 5.0)]), 0);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn groups_and_machines_sorted_unique() {
        let mut store = TelemetryStore::new();
        store.push(rec(3, 2, 0, 0.0));
        store.push(rec(1, 0, 0, 0.0));
        store.push(rec(3, 2, 1, 0.0));
        assert_eq!(store.machines(), vec![MachineId(1), MachineId(3)]);
        let groups = store.groups();
        assert_eq!(groups.len(), 2);
        assert!(groups[0] < groups[1]);
    }

    #[test]
    fn hour_span() {
        let mut store = TelemetryStore::new();
        assert_eq!(store.hour_span(), None);
        store.push(rec(1, 0, 5, 0.0));
        store.push(rec(1, 0, 9, 0.0));
        // One-pass unsealed path must not force a delta index build.
        assert_eq!(store.hour_span(), Some((5, 10)));
        assert!(!store.is_sealed());
        // Sealed path reads the recorded run bounds in O(1).
        store.seal();
        assert_eq!(store.hour_span(), Some((5, 10)));
        // Straddling runs and delta: span covers both sides.
        store.push(rec(1, 0, 2, 0.0));
        store.push(rec(1, 0, 30, 0.0));
        assert_eq!(store.hour_span(), Some((2, 31)));
    }

    #[test]
    fn machines_and_hours_filter() {
        let mut store = TelemetryStore::new();
        for m in 0..4 {
            for h in 0..5 {
                store.push(rec(m, 0, h, 0.0));
            }
        }
        let subset: BTreeSet<MachineId> = [MachineId(1), MachineId(3)].into_iter().collect();
        assert_eq!(store.by_machines_and_hours(&subset, 1, 3).count(), 4);
        // Machines the store has never seen are simply absent.
        let strangers: BTreeSet<MachineId> = [MachineId(99)].into_iter().collect();
        assert_eq!(store.by_machines_and_hours(&strangers, 0, 5).count(), 0);
    }

    #[test]
    fn merge_combines_records() {
        let mut a = TelemetryStore::new();
        a.push(rec(1, 0, 0, 0.0));
        let mut b = TelemetryStore::new();
        b.push(rec(2, 0, 0, 0.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    /// Regression (previously: `merge` appended `other.records` directly,
    /// bypassing the non-finite guard that `push` enforces, so a store
    /// assembled from per-window merges could smuggle NaN metrics into
    /// the kernels). `merge` now routes through the same validated batch
    /// append as `extend`.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite telemetry emitted")]
    fn merge_rejects_non_finite_records() {
        // Build the offending store around the validated entry points,
        // the way a corrupted window would arrive from outside.
        let bad = TelemetryStore {
            tail: vec![rec(1, 0, 0, f64::NAN)],
            ..TelemetryStore::default()
        };
        let mut store = TelemetryStore::new();
        store.push(rec(2, 0, 0, 1.0));
        store.merge(bad);
    }

    #[test]
    fn extend_from_iterator() {
        let mut store = TelemetryStore::new();
        store.extend((0..10).map(|h| rec(1, 0, h, h as f64)));
        assert_eq!(store.len(), 10);
        assert!(store.iter().all(|r| r.machine == MachineId(1)));
    }

    #[test]
    fn by_group_is_hour_machine_sorted() {
        let mut store = TelemetryStore::new();
        // Shuffled insertion order.
        store.push(rec(2, 1, 5, 0.0));
        store.push(rec(1, 0, 3, 0.0));
        store.push(rec(3, 0, 1, 0.0));
        store.push(rec(1, 0, 1, 0.0));
        let g0: Vec<_> = store.by_group(GroupKey::new(SkuId(0), ScId(0))).collect();
        assert_eq!(g0.len(), 3);
        assert!(g0.windows(2).all(|w| (w[0].hour, w[0].machine) <= (w[1].hour, w[1].machine)));
        assert_eq!(
            store.by_group(GroupKey::new(SkuId(9), ScId(0))).count(),
            0
        );
    }

    #[test]
    fn append_after_seal_lands_in_delta() {
        let mut store = TelemetryStore::new();
        store.push(rec(1, 0, 0, 1.0));
        store.seal();
        assert!(store.is_sealed());
        store.push(rec(2, 0, 1, 2.0));
        assert!(!store.is_sealed(), "append must open a delta");
        assert_eq!(store.delta_len(), 1);
        // Views merge runs + delta without sealing.
        assert_eq!(store.by_hours(0, 2).count(), 2);
        assert_eq!(store.machines().len(), 2);
        assert!(!store.is_sealed(), "queries must not seal");
        // Explicit seal turns the delta into a run.
        store.seal();
        assert!(store.is_sealed());
        assert_eq!(store.delta_len(), 0);
        assert_eq!(store.by_hours(0, 2).count(), 2);
    }

    #[test]
    fn merged_views_interleave_runs_and_delta() {
        let mut store = TelemetryStore::new();
        // Run: hours 0, 2, 4 on machine 1; delta: hours 1, 2, 3 on
        // machines 2/1/1 — merged views must interleave by (hour, machine).
        for h in [0u64, 2, 4] {
            store.push(rec(1, 0, h, 1.0));
        }
        store.seal();
        store.push(rec(2, 0, 1, 2.0));
        store.push(rec(1, 0, 2, 2.0));
        store.push(rec(1, 0, 3, 2.0));
        let hours: Vec<(u64, u32)> = store
            .by_group(GroupKey::new(SkuId(0), ScId(0)))
            .map(|r| (r.hour, r.machine.0))
            .collect();
        assert_eq!(hours, vec![(0, 1), (1, 2), (2, 1), (2, 1), (3, 1), (4, 1)]);
        // by_machine merges the machine-1 sides by hour.
        let m1: Vec<u64> = store.by_machine(MachineId(1)).map(|r| r.hour).collect();
        assert_eq!(m1, vec![0, 2, 2, 3, 4]);
        // Duplicate (machine, hour) keys: run rows come first.
        let dup: Vec<f64> = store
            .by_hours(2, 3)
            .map(|r| r.metrics.cpu_utilization)
            .collect();
        assert_eq!(dup, vec![1.0, 2.0]);
    }

    #[test]
    fn automatic_compaction_past_threshold() {
        let mut store = TelemetryStore::new();
        // One batch bigger than the floor seals once at the end.
        store.extend((0..1500u64).map(|i| rec((i % 7) as u32, 0, i, i as f64)));
        assert!(store.is_sealed(), "bulk extend seals at call end");
        // Small pushes stay in the delta…
        for i in 0..100u64 {
            store.push(rec(1, 0, 2000 + i, 0.0));
        }
        assert!(!store.is_sealed());
        assert_eq!(store.delta_len(), 100);
        // …until the per-call check crosses the delta floor.
        store.extend((0..1000u64).map(|i| rec(2, 0, 3000 + i, 0.0)));
        assert!(store.is_sealed(), "threshold crossing seals");
        assert_eq!(store.len(), 2600);
        assert_eq!(store.by_hours(0, 5000).count(), 2600);
        // The 1100-row batch is smaller than the 1500-row elder run, so
        // the ladder leaves them as two runs.
        assert_eq!(store.run_count(), 2);
    }

    #[test]
    fn ladder_bounds_run_count() {
        // 64 sealed batches of equal size collapse like a binary counter:
        // the live run count stays logarithmic in the batch count.
        let mut store = TelemetryStore::new();
        for b in 0..64u64 {
            store.extend((0..32u64).map(|i| rec((i % 4) as u32, 0, b * 32 + i, 0.0)));
            store.seal();
            assert!(
                store.run_count() <= 7,
                "run count {} exceeds log bound after batch {b}",
                store.run_count()
            );
        }
        assert_eq!(store.len(), 64 * 32);
        assert_eq!(store.by_hours(0, 64 * 32).count(), 64 * 32);
    }

    #[test]
    fn window_sides_prune_disjoint_runs() {
        let mut store = TelemetryStore::new();
        // Two runs with disjoint hour ranges. Equal sizes would
        // ladder-merge, so make the elder strictly larger.
        store.extend((0..20u64).map(|h| rec(1, 0, h, 0.0)));
        store.seal();
        store.extend((100..110u64).map(|h| rec(1, 0, h, 0.0)));
        store.seal();
        assert_eq!(store.run_count(), 2);
        // A window inside the second run's bounds consults one side.
        assert_eq!(store.window_sides(100, 105).len(), 1);
        assert_eq!(store.window_sides(0, 20).len(), 1);
        // A window spanning both consults both.
        assert_eq!(store.window_sides(10, 101).len(), 2);
        // A window in the gap consults none (no delta).
        assert_eq!(store.window_sides(50, 60).len(), 0);
        // An open delta is always a side.
        store.push(rec(2, 0, 55, 0.0));
        assert_eq!(store.window_sides(50, 60).len(), 1);
        assert_eq!(store.by_hours(50, 60).count(), 1);
        // And query results match the pruned merge.
        assert_eq!(store.by_hours(0, 200).count(), 31);
        assert_eq!(store.by_hours(100, 105).count(), 5);
    }

    #[test]
    fn compact_segments_restores_single_run() {
        // Overlapping-bound runs defeat pruning; compact_segments folds
        // them back into one and the result is structurally identical to
        // an index built from scratch. Keys are unique per record
        // (disjoint machine ranges per batch): with duplicate keys the
        // unstable build sort and the stable merge may legally order the
        // duplicates' payloads differently — that case is covered as a
        // multiset by the agreement suite.
        let mut merged = TelemetryStore::new();
        let mut rebuilt = TelemetryStore::new();
        let batches: Vec<Vec<MachineHourRecord>> = (0..5u64)
            .map(|b| {
                (0..40u64)
                    .map(|i| rec((b * 100 + i % 10) as u32, (b % 3) as u16, (i * 3 + b) % 50, (b + i) as f64))
                    .collect()
            })
            .collect();
        for batch in &batches {
            merged.extend(batch.iter().copied());
            merged.seal(); // a run per batch (modulo ladder merges)
            rebuilt.extend(batch.iter().copied());
        }
        merged.compact_segments(); // all bounds overlap → one run
        rebuilt.seal();
        let (a, b) = (single_run(&merged), single_run(&rebuilt));
        assert_eq!(a.sorted, b.sorted);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.group_offsets, b.group_offsets);
        assert_eq!(a.machines, b.machines);
        assert_eq!(a.machine_dense, b.machine_dense);
        assert_eq!(a.hours, b.hours);
        assert_eq!(a.hour_offsets, b.hour_offsets);
        assert_eq!(a.machine_offsets, b.machine_offsets);
        assert_eq!(a.columns, b.columns);
        // Secondary permutations may order duplicate keys differently;
        // they must agree after mapping to records.
        let gather = |idx: &ColumnIndex, order: &[usize]| -> Vec<MachineHourRecord> {
            order.iter().map(|&row| idx.sorted[row]).collect()
        };
        assert_eq!(gather(a, &a.hour_order), gather(b, &b.hour_order));
        assert_eq!(gather(a, &a.machine_order), gather(b, &b.machine_order));
    }

    #[test]
    fn index_csr_invariants() {
        let mut store = TelemetryStore::new();
        for m in 0..5u32 {
            for h in [0u64, 2, 7] {
                store.push(rec(m, (m % 2) as u16, h, m as f64));
            }
        }
        store.seal();
        let idx = single_run(&store);
        assert_eq!(idx.group_offsets.len(), idx.groups.len() + 1);
        assert_eq!(idx.hour_offsets.len(), idx.hours.len() + 1);
        assert_eq!(idx.machine_offsets.len(), idx.machines.len() + 1);
        assert_eq!(*idx.group_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.hour_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.machine_offsets.last().unwrap(), store.len());
        assert!(idx.group_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(idx.hour_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(idx.machine_offsets.windows(2).all(|w| w[0] <= w[1]));
        // Columns are per-metric and full-length.
        assert_eq!(idx.columns.len(), Metric::ALL.len());
        assert!(idx.columns.iter().all(|c| c.len() == store.len()));
        // Dense ids round-trip.
        for (row, r) in idx.sorted.iter().enumerate() {
            assert_eq!(idx.machines[idx.machine_dense[row] as usize], r.machine);
        }
    }

    #[test]
    fn merged_index_csr_invariants() {
        // Same invariants on a run produced by ColumnIndex::merge (the
        // 15-row elder is no larger than the 18-row newcomer, so the
        // second seal ladder-merges them into one run).
        let mut store = TelemetryStore::new();
        for m in 0..5u32 {
            for h in [0u64, 2, 7] {
                store.push(rec(m, (m % 2) as u16, h, m as f64));
            }
        }
        store.seal();
        for m in 3..9u32 {
            for h in [1u64, 2, 9] {
                store.push(rec(m, (m % 3) as u16, h, m as f64));
            }
        }
        store.seal();
        let idx = single_run(&store);
        assert_eq!(idx.group_offsets.len(), idx.groups.len() + 1);
        assert_eq!(idx.hour_offsets.len(), idx.hours.len() + 1);
        assert_eq!(idx.machine_offsets.len(), idx.machines.len() + 1);
        assert_eq!(*idx.group_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.hour_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.machine_offsets.last().unwrap(), store.len());
        assert!(idx.sorted.windows(2).all(|w| {
            (w[0].group, w[0].hour, w[0].machine) <= (w[1].group, w[1].hour, w[1].machine)
        }));
        for (row, r) in idx.sorted.iter().enumerate() {
            assert_eq!(idx.machines[idx.machine_dense[row] as usize], r.machine);
        }
        for (col, metric) in idx.columns.iter().zip(Metric::ALL) {
            for (row, r) in idx.sorted.iter().enumerate() {
                assert_eq!(col[row], metric.value(&r.metrics));
            }
        }
    }

    #[test]
    fn merge_many_handles_edge_shapes() {
        let batch: Vec<MachineHourRecord> =
            (0..8u64).map(|i| rec(i as u32, 0, i, i as f64)).collect();
        let idx = ColumnIndex::build(&batch);
        let empty = ColumnIndex::build(&[]);
        // No sides / all-empty sides → the empty index.
        assert!(ColumnIndex::merge_many(&[]).sorted.is_empty());
        assert!(ColumnIndex::merge_many(&[&empty, &empty]).sorted.is_empty());
        // One non-empty side → that side, empties ignored.
        let one = ColumnIndex::merge_many(&[&empty, &idx, &empty]);
        assert_eq!(one.sorted, idx.sorted);
        assert_eq!(one.hour_order, idx.hour_order);
        // Three-way fold equals a from-scratch build on unique keys.
        let batch2: Vec<MachineHourRecord> =
            (0..8u64).map(|i| rec(100 + i as u32, 1, i + 3, i as f64)).collect();
        let batch3: Vec<MachineHourRecord> =
            (0..8u64).map(|i| rec(200 + i as u32, 2, i + 6, i as f64)).collect();
        let (i2, i3) = (ColumnIndex::build(&batch2), ColumnIndex::build(&batch3));
        let folded = ColumnIndex::merge_many(&[&idx, &i2, &i3]);
        let mut all = batch.clone();
        all.extend_from_slice(&batch2);
        all.extend_from_slice(&batch3);
        let built = ColumnIndex::build(&all);
        assert_eq!(folded.sorted, built.sorted);
        assert_eq!(folded.machine_dense, built.machine_dense);
        assert_eq!(folded.columns, built.columns);
    }

    #[test]
    fn empty_store_indexed_queries() {
        let mut store = TelemetryStore::new();
        store.seal();
        assert!(store.groups().is_empty());
        assert!(store.machines().is_empty());
        assert_eq!(store.hour_span(), None);
        assert_eq!(store.by_hours(0, 10).count(), 0);
        assert_eq!(store.by_machine(MachineId(0)).count(), 0);
        assert_eq!(store.run_count(), 0);
    }

    #[test]
    fn clone_is_detached_and_equal() {
        let mut store = TelemetryStore::new();
        store.extend((0..50u64).map(|i| rec((i % 5) as u32, 0, i, i as f64)));
        store.seal();
        store.push(rec(9, 1, 60, 1.0));
        let mut twin = store.clone();
        assert_eq!(twin.len(), store.len());
        assert_eq!(
            twin.by_hours(0, 100).count(),
            store.by_hours(0, 100).count()
        );
        assert!(!twin.is_durable());
        // Mutating the clone leaves the original untouched.
        twin.push(rec(10, 1, 61, 1.0));
        assert_eq!(store.len(), 51);
        assert_eq!(twin.len(), 52);
    }
}
