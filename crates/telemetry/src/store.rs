//! In-memory telemetry store: columnar, indexed.
//!
//! The production KEA pipeline lands metrics in Cosmos itself and re-reads
//! them daily; our reproduction keeps the observation window in memory
//! (a 7-day window for a simulated cluster is a few million records at
//! most). The store is append-only with filtered views — exactly the
//! access pattern of the Performance Monitor — and every module re-reads
//! the same window many times per tuning run, so reads are what must be
//! fast.
//!
//! # Layout
//!
//! Appends land in a flat insertion-order vector. On [`TelemetryStore::seal`]
//! — or lazily, on the first filtered query — the store builds a
//! [`ColumnIndex`]:
//!
//! * the records re-sorted by `(group, hour, machine)`, so every group is
//!   one contiguous slice and, within it, hours are contiguous runs;
//! * interned **dense ids**: the distinct groups, machines, and hours,
//!   sorted, with per-row dense machine ids for bitmap probes;
//! * offset-range indexes over groups, hours, and machines, so
//!   [`by_group`](TelemetryStore::by_group),
//!   [`by_hours`](TelemetryStore::by_hours), and
//!   [`by_machine`](TelemetryStore::by_machine) are a binary search plus a
//!   contiguous range — zero per-record predicates;
//! * struct-of-arrays **metric columns** (one `Vec<f64>` per
//!   [`Metric`](crate::Metric), including the derived ratios) in sorted-row
//!   order, which the fused aggregation kernels in [`crate::aggregate`]
//!   consume.
//!
//! Appending after a seal simply drops the index; the next query rebuilds
//! it. The previous flat-scan implementation survives unchanged as
//! [`reference::TelemetryStore`]: it is the executable specification that
//! the randomized agreement suite (`tests/agreement.rs`) pins the columnar
//! engine against, and the baseline the `telemetry_scan` bench measures
//! speedups over.

use crate::metric::Metric;
use crate::record::{GroupKey, MachineHourRecord, MachineId};
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::OnceLock;

/// Append-only store of machine-hour records with a columnar read index.
#[derive(Debug, Clone, Default)]
pub struct TelemetryStore {
    /// Insertion-order records ([`iter`](TelemetryStore::iter) and CSV
    /// round-trips preserve this order exactly).
    records: Vec<MachineHourRecord>,
    /// Sorted/columnar read index, built once per generation of the data.
    index: OnceLock<ColumnIndex>,
}

/// The sealed columnar layout. Built by [`ColumnIndex::build`]; immutable
/// afterwards. All `Vec<usize>` offset tables follow the CSR convention:
/// `offsets.len() == keys.len() + 1` and key `i` owns rows
/// `offsets[i]..offsets[i + 1]`.
//
// kea-lint: allow-file(index-in-library) — dense index kernel: every row
// position is produced by this module's own sort/partition passes and every
// offset table is constructed with the CSR invariant checked in tests.
#[derive(Debug, Clone)]
pub(crate) struct ColumnIndex {
    /// All records sorted by `(group, hour, machine)`.
    pub(crate) sorted: Vec<MachineHourRecord>,
    /// Distinct groups, ascending.
    pub(crate) groups: Vec<GroupKey>,
    /// CSR offsets into `sorted` per group.
    pub(crate) group_offsets: Vec<usize>,
    /// Distinct machines, ascending. A machine's position here is its
    /// *dense id*.
    pub(crate) machines: Vec<MachineId>,
    /// Dense machine id of each row of `sorted`.
    pub(crate) machine_dense: Vec<u32>,
    /// Distinct hours, ascending.
    pub(crate) hours: Vec<u64>,
    /// Row positions of `sorted`, re-ordered by `(hour, machine)`.
    pub(crate) hour_order: Vec<usize>,
    /// CSR offsets into `hour_order` per distinct hour.
    pub(crate) hour_offsets: Vec<usize>,
    /// Row positions of `sorted`, re-ordered by `(machine, hour)`.
    pub(crate) machine_order: Vec<usize>,
    /// CSR offsets into `machine_order` per dense machine id.
    pub(crate) machine_offsets: Vec<usize>,
    /// Struct-of-arrays metric columns in `sorted` row order:
    /// `columns[m.index()][row] == m.value(&sorted[row].metrics)`.
    pub(crate) columns: Vec<Vec<f64>>,
}

impl ColumnIndex {
    /// Sorts and interns `records` into the columnar layout.
    fn build(records: &[MachineHourRecord]) -> Self {
        let n = records.len();
        let mut sorted = records.to_vec();
        sorted.sort_unstable_by_key(|r| (r.group, r.hour, r.machine));

        // Group runs → CSR offsets (sorted is group-major).
        let mut groups = Vec::new();
        let mut group_offsets = vec![0];
        for (row, r) in sorted.iter().enumerate() {
            if groups.last() != Some(&r.group) {
                if !groups.is_empty() {
                    group_offsets.push(row);
                }
                groups.push(r.group);
            }
        }
        group_offsets.push(n);
        if groups.is_empty() {
            group_offsets = vec![0];
        }

        // Machine interning: distinct sorted ids, then a dense id per row.
        let mut machines: Vec<MachineId> = sorted.iter().map(|r| r.machine).collect();
        machines.sort_unstable();
        machines.dedup();
        let machine_dense: Vec<u32> = sorted
            .iter()
            .map(|r| {
                // Every row's machine is in `machines` by construction,
                // and dense ids fit u32 because MachineId wraps a u32.
                machines.partition_point(|m| *m < r.machine) as u32
            })
            .collect();

        // Secondary orderings: by (hour, machine) and by (machine, hour).
        // Both are permutations of row positions into `sorted`, so the
        // heavy record payload is stored exactly once.
        let mut hour_order: Vec<usize> = (0..n).collect();
        hour_order.sort_unstable_by_key(|&row| (sorted[row].hour, sorted[row].machine));
        let mut hours = Vec::new();
        let mut hour_offsets = vec![0];
        for (pos, &row) in hour_order.iter().enumerate() {
            let h = sorted[row].hour;
            if hours.last() != Some(&h) {
                if !hours.is_empty() {
                    hour_offsets.push(pos);
                }
                hours.push(h);
            }
        }
        hour_offsets.push(n);
        if hours.is_empty() {
            hour_offsets = vec![0];
        }

        let mut machine_order: Vec<usize> = (0..n).collect();
        machine_order.sort_unstable_by_key(|&row| (machine_dense[row], sorted[row].hour));
        let mut machine_offsets = vec![0; machines.len() + 1];
        for &row in &machine_order {
            machine_offsets[machine_dense[row] as usize + 1] += 1;
        }
        for i in 1..machine_offsets.len() {
            machine_offsets[i] += machine_offsets[i - 1];
        }

        // Struct-of-arrays metric columns, derived ratios included.
        let mut columns = vec![Vec::with_capacity(n); Metric::ALL.len()];
        for r in &sorted {
            let row = Metric::row_of(&r.metrics);
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }

        ColumnIndex {
            sorted,
            groups,
            group_offsets,
            machines,
            machine_dense,
            hours,
            hour_order,
            hour_offsets,
            machine_order,
            machine_offsets,
            columns,
        }
    }

    /// Row range of one group in `sorted`, empty when absent.
    pub(crate) fn group_range(&self, group: GroupKey) -> Range<usize> {
        let gi = self.groups.partition_point(|g| *g < group);
        if self.groups.get(gi) == Some(&group) {
            self.group_offsets[gi]..self.group_offsets[gi + 1]
        } else {
            0..0
        }
    }

    /// Position range in `hour_order` covering hours `[start, end)`.
    pub(crate) fn hour_position_range(&self, start: u64, end: u64) -> Range<usize> {
        let lo = self.hours.partition_point(|&h| h < start);
        let hi = self.hours.partition_point(|&h| h < end);
        self.hour_offsets[lo]..self.hour_offsets[hi]
    }

    /// Dense id of `machine`, if present.
    fn dense_machine(&self, machine: MachineId) -> Option<usize> {
        let mi = self.machines.partition_point(|m| *m < machine);
        (self.machines.get(mi) == Some(&machine)).then_some(mi)
    }

    /// One contiguous metric column slice for a group.
    pub(crate) fn group_column(&self, group: GroupKey, metric: Metric) -> &[f64] {
        &self.columns[metric.index()][self.group_range(group)]
    }
}

/// A set-membership bitmap over dense machine ids — the probe structure
/// behind [`TelemetryStore::by_machines_and_hours`]. One bit per distinct
/// machine in the window, so a 64k-machine fleet fits in 8 KiB.
struct MachineBitmap {
    words: Vec<u64>,
}

impl MachineBitmap {
    fn from_set(index: &ColumnIndex, machines: &BTreeSet<MachineId>) -> Self {
        let mut words = vec![0u64; index.machines.len().div_ceil(64)];
        for &m in machines {
            if let Some(dense) = index.dense_machine(m) {
                words[dense / 64] |= 1 << (dense % 64);
            }
        }
        MachineBitmap { words }
    }

    #[inline]
    fn contains(&self, dense: u32) -> bool {
        let dense = dense as usize;
        (self.words[dense / 64] >> (dense % 64)) & 1 == 1
    }
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record, dropping any built index. Non-finite metric
    /// blocks are rejected by debug assertion — the simulator must never
    /// emit them (CSV ingest checks them with a typed error instead, see
    /// [`crate::csv`]).
    pub fn push(&mut self, record: MachineHourRecord) {
        debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
        self.index.take();
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = MachineHourRecord>) {
        for r in records {
            self.push(r);
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Builds the columnar read index now (sorting, interning, and column
    /// extraction are O(N log N)). Queries seal lazily on first use, so
    /// calling this is never required — it only moves the one-time cost to
    /// a chosen point (e.g. right after a simulation flush, before the
    /// timed analysis path).
    pub fn seal(&self) {
        self.index();
    }

    /// True when the columnar index is currently built (no append since
    /// the last seal or indexed query).
    pub fn is_sealed(&self) -> bool {
        self.index.get().is_some()
    }

    /// The columnar index, building it on first use per data generation.
    pub(crate) fn index(&self) -> &ColumnIndex {
        self.index.get_or_init(|| ColumnIndex::build(&self.records))
    }

    /// All records, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &MachineHourRecord> {
        self.records.iter()
    }

    /// Records for one machine group as one contiguous slice, sorted by
    /// `(hour, machine)`. Empty when the group is absent.
    pub fn group_records(&self, group: GroupKey) -> &[MachineHourRecord] {
        let index = self.index();
        &index.sorted[index.group_range(group)]
    }

    /// Records for one machine group, sorted by `(hour, machine)`.
    pub fn by_group(&self, group: GroupKey) -> impl Iterator<Item = &MachineHourRecord> {
        self.group_records(group).iter()
    }

    /// Records for one machine, sorted by hour.
    pub fn by_machine(&self, machine: MachineId) -> impl Iterator<Item = &MachineHourRecord> {
        let index = self.index();
        let range = match index.dense_machine(machine) {
            Some(dense) => index.machine_offsets[dense]..index.machine_offsets[dense + 1],
            None => 0..0,
        };
        index.machine_order[range]
            .iter()
            .map(move |&row| &index.sorted[row])
    }

    /// Records within `[start_hour, end_hour)`, sorted by
    /// `(hour, machine)`.
    pub fn by_hours(
        &self,
        start_hour: u64,
        end_hour: u64,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        let index = self.index();
        index.hour_order[index.hour_position_range(start_hour, end_hour)]
            .iter()
            .map(move |&row| &index.sorted[row])
    }

    /// Records for a set of machines within `[start_hour, end_hour)` —
    /// the shape of a flighting measurement query. The hour range is an
    /// index probe; machine membership is one bitmap test per candidate
    /// row (dense ids, no `BTreeSet` lookup per record).
    pub fn by_machines_and_hours<'a>(
        &'a self,
        machines: &BTreeSet<MachineId>,
        start_hour: u64,
        end_hour: u64,
    ) -> impl Iterator<Item = &'a MachineHourRecord> {
        let index = self.index();
        let bitmap = MachineBitmap::from_set(index, machines);
        index.hour_order[index.hour_position_range(start_hour, end_hour)]
            .iter()
            .filter(move |&&row| bitmap.contains(index.machine_dense[row]))
            .map(move |&row| &index.sorted[row])
    }

    /// The distinct machine groups present, sorted.
    pub fn groups(&self) -> Vec<GroupKey> {
        self.index().groups.clone()
    }

    /// The distinct machines present, sorted.
    pub fn machines(&self) -> Vec<MachineId> {
        self.index().machines.clone()
    }

    /// Inclusive-exclusive hour span `(min, max+1)` covered by the store,
    /// or `None` when empty. O(1) when sealed; a single min/max pass when
    /// not (this never forces an index build).
    pub fn hour_span(&self) -> Option<(u64, u64)> {
        if let Some(index) = self.index.get() {
            return match (index.hours.first(), index.hours.last()) {
                (Some(&min), Some(&max)) => Some((min, max + 1)),
                _ => None,
            };
        }
        self.records
            .iter()
            .map(|r| r.hour)
            .fold(None, |acc, h| match acc {
                None => Some((h, h)),
                Some((lo, hi)) => Some((lo.min(h), hi.max(h))),
            })
            .map(|(lo, hi)| (lo, hi + 1))
    }

    /// Merges another store into this one (e.g. combining experiment and
    /// control windows collected separately). Drops any built index.
    pub fn merge(&mut self, other: TelemetryStore) {
        self.index.take();
        self.records.extend(other.records);
    }
}

/// The pre-columnar flat store, preserved verbatim as an executable
/// specification. Every view is an O(N) scan with a per-record predicate
/// and every distinct-set query materializes a `BTreeSet` — exactly what
/// the columnar engine replaces. The randomized agreement suite
/// (`tests/agreement.rs`) pins the two implementations to identical views
/// and 1e-9-identical aggregates; the `telemetry_scan` bench measures the
/// speedup against it.
pub mod reference {
    use crate::record::{GroupKey, MachineHourRecord, MachineId};
    use std::collections::BTreeSet;

    /// Append-only store of machine-hour records (flat-scan reference).
    #[derive(Debug, Clone, Default)]
    pub struct TelemetryStore {
        records: Vec<MachineHourRecord>,
    }

    impl TelemetryStore {
        /// Creates an empty store.
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends one record.
        pub fn push(&mut self, record: MachineHourRecord) {
            debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
            self.records.push(record);
        }

        /// Appends many records.
        pub fn extend(&mut self, records: impl IntoIterator<Item = MachineHourRecord>) {
            for r in records {
                self.push(r);
            }
        }

        /// Number of records.
        pub fn len(&self) -> usize {
            self.records.len()
        }

        /// True when empty.
        pub fn is_empty(&self) -> bool {
            self.records.is_empty()
        }

        /// All records, in insertion order.
        pub fn iter(&self) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter()
        }

        /// Records for one machine group (predicate scan).
        pub fn by_group(&self, group: GroupKey) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter().filter(move |r| r.group == group)
        }

        /// Records for one machine (predicate scan).
        pub fn by_machine(&self, machine: MachineId) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter().filter(move |r| r.machine == machine)
        }

        /// Records within `[start_hour, end_hour)` (predicate scan).
        pub fn by_hours(
            &self,
            start_hour: u64,
            end_hour: u64,
        ) -> impl Iterator<Item = &MachineHourRecord> {
            self.records
                .iter()
                .filter(move |r| r.hour >= start_hour && r.hour < end_hour)
        }

        /// Records for a set of machines within `[start_hour, end_hour)`
        /// (predicate scan with a `BTreeSet::contains` per record).
        pub fn by_machines_and_hours<'a>(
            &'a self,
            machines: &'a BTreeSet<MachineId>,
            start_hour: u64,
            end_hour: u64,
        ) -> impl Iterator<Item = &'a MachineHourRecord> {
            self.records.iter().filter(move |r| {
                r.hour >= start_hour && r.hour < end_hour && machines.contains(&r.machine)
            })
        }

        /// The distinct machine groups present, sorted.
        pub fn groups(&self) -> Vec<GroupKey> {
            let set: BTreeSet<GroupKey> = self.records.iter().map(|r| r.group).collect();
            set.into_iter().collect()
        }

        /// The distinct machines present, sorted.
        pub fn machines(&self) -> Vec<MachineId> {
            let set: BTreeSet<MachineId> = self.records.iter().map(|r| r.machine).collect();
            set.into_iter().collect()
        }

        /// Inclusive-exclusive hour span `(min, max+1)` covered by the
        /// store, or `None` when empty (two-pass, as shipped).
        pub fn hour_span(&self) -> Option<(u64, u64)> {
            let min = self.records.iter().map(|r| r.hour).min()?;
            let max = self.records.iter().map(|r| r.hour).max()?;
            Some((min, max + 1))
        }

        /// Merges another store into this one.
        pub fn merge(&mut self, other: TelemetryStore) {
            self.records.extend(other.records);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetricValues, ScId, SkuId};

    fn rec(machine: u32, sku: u16, hour: u64, cpu: f64) -> MachineHourRecord {
        MachineHourRecord {
            machine: MachineId(machine),
            group: GroupKey::new(SkuId(sku), ScId(0)),
            hour,
            metrics: MetricValues {
                cpu_utilization: cpu,
                ..Default::default()
            },
        }
    }

    #[test]
    fn push_and_filters() {
        let mut store = TelemetryStore::new();
        store.push(rec(1, 0, 0, 10.0));
        store.push(rec(1, 0, 1, 20.0));
        store.push(rec(2, 1, 0, 30.0));
        assert_eq!(store.len(), 3);
        assert_eq!(store.by_machine(MachineId(1)).count(), 2);
        assert_eq!(
            store.by_group(GroupKey::new(SkuId(1), ScId(0))).count(),
            1
        );
        assert_eq!(store.by_hours(0, 1).count(), 2);
        assert_eq!(store.by_hours(1, 2).count(), 1);
    }

    #[test]
    fn groups_and_machines_sorted_unique() {
        let mut store = TelemetryStore::new();
        store.push(rec(3, 2, 0, 0.0));
        store.push(rec(1, 0, 0, 0.0));
        store.push(rec(3, 2, 1, 0.0));
        assert_eq!(store.machines(), vec![MachineId(1), MachineId(3)]);
        let groups = store.groups();
        assert_eq!(groups.len(), 2);
        assert!(groups[0] < groups[1]);
    }

    #[test]
    fn hour_span() {
        let mut store = TelemetryStore::new();
        assert_eq!(store.hour_span(), None);
        store.push(rec(1, 0, 5, 0.0));
        store.push(rec(1, 0, 9, 0.0));
        // One-pass unsealed path must not force an index build.
        assert_eq!(store.hour_span(), Some((5, 10)));
        assert!(!store.is_sealed());
        // Sealed path reads the hour index in O(1).
        store.seal();
        assert_eq!(store.hour_span(), Some((5, 10)));
    }

    #[test]
    fn machines_and_hours_filter() {
        let mut store = TelemetryStore::new();
        for m in 0..4 {
            for h in 0..5 {
                store.push(rec(m, 0, h, 0.0));
            }
        }
        let subset: BTreeSet<MachineId> = [MachineId(1), MachineId(3)].into_iter().collect();
        assert_eq!(store.by_machines_and_hours(&subset, 1, 3).count(), 4);
        // Machines the store has never seen are simply absent.
        let strangers: BTreeSet<MachineId> = [MachineId(99)].into_iter().collect();
        assert_eq!(store.by_machines_and_hours(&strangers, 0, 5).count(), 0);
    }

    #[test]
    fn merge_combines_records() {
        let mut a = TelemetryStore::new();
        a.push(rec(1, 0, 0, 0.0));
        let mut b = TelemetryStore::new();
        b.push(rec(2, 0, 0, 0.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn extend_from_iterator() {
        let mut store = TelemetryStore::new();
        store.extend((0..10).map(|h| rec(1, 0, h, h as f64)));
        assert_eq!(store.len(), 10);
        assert!(store.iter().all(|r| r.machine == MachineId(1)));
    }

    #[test]
    fn group_records_is_contiguous_and_sorted() {
        let mut store = TelemetryStore::new();
        // Shuffled insertion order.
        store.push(rec(2, 1, 5, 0.0));
        store.push(rec(1, 0, 3, 0.0));
        store.push(rec(3, 0, 1, 0.0));
        store.push(rec(1, 0, 1, 0.0));
        let g0 = store.group_records(GroupKey::new(SkuId(0), ScId(0)));
        assert_eq!(g0.len(), 3);
        assert!(g0.windows(2).all(|w| (w[0].hour, w[0].machine) <= (w[1].hour, w[1].machine)));
        assert!(store
            .group_records(GroupKey::new(SkuId(9), ScId(0)))
            .is_empty());
    }

    #[test]
    fn append_after_seal_reindexes() {
        let mut store = TelemetryStore::new();
        store.push(rec(1, 0, 0, 1.0));
        store.seal();
        assert!(store.is_sealed());
        store.push(rec(2, 0, 1, 2.0));
        assert!(!store.is_sealed(), "append must invalidate the index");
        assert_eq!(store.by_hours(0, 2).count(), 2);
        assert_eq!(store.machines().len(), 2);
    }

    #[test]
    fn index_csr_invariants() {
        let mut store = TelemetryStore::new();
        for m in 0..5u32 {
            for h in [0u64, 2, 7] {
                store.push(rec(m, (m % 2) as u16, h, m as f64));
            }
        }
        store.seal();
        let idx = store.index();
        assert_eq!(idx.group_offsets.len(), idx.groups.len() + 1);
        assert_eq!(idx.hour_offsets.len(), idx.hours.len() + 1);
        assert_eq!(idx.machine_offsets.len(), idx.machines.len() + 1);
        assert_eq!(*idx.group_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.hour_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.machine_offsets.last().unwrap(), store.len());
        assert!(idx.group_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(idx.hour_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(idx.machine_offsets.windows(2).all(|w| w[0] <= w[1]));
        // Columns are per-metric and full-length.
        assert_eq!(idx.columns.len(), Metric::ALL.len());
        assert!(idx.columns.iter().all(|c| c.len() == store.len()));
        // Dense ids round-trip.
        for (row, r) in idx.sorted.iter().enumerate() {
            assert_eq!(idx.machines[idx.machine_dense[row] as usize], r.machine);
        }
    }

    #[test]
    fn empty_store_indexed_queries() {
        let store = TelemetryStore::new();
        store.seal();
        assert!(store.groups().is_empty());
        assert!(store.machines().is_empty());
        assert_eq!(store.hour_span(), None);
        assert_eq!(store.by_hours(0, 10).count(), 0);
        assert_eq!(store.by_machine(MachineId(0)).count(), 0);
    }
}
