//! In-memory telemetry store: columnar, indexed, with incremental re-seal.
//!
//! The production KEA pipeline lands metrics in Cosmos itself and re-reads
//! them daily; our reproduction keeps the observation window in memory
//! (a 7-day window for a simulated cluster is a few million records at
//! most). The store is append-only with filtered views — exactly the
//! access pattern of the Performance Monitor — and every module re-reads
//! the same window many times per tuning run, so reads are what must be
//! fast *and* appends must not invalidate the read structures wholesale:
//! the monitor is a continuously running service ingesting per-hour
//! batches.
//!
//! # Layout: sealed run + sorted delta
//!
//! The store is a two-level LSM-shaped structure:
//!
//! * The **sealed run** is an immutable [`ColumnIndex`]: the compacted
//!   prefix of the record log, sorted by `(group, hour, machine)` with
//!   interned dense ids, CSR offset-range indexes over groups/hours/
//!   machines, and struct-of-arrays metric columns.
//! * The **delta** is the tail of the record log appended since the last
//!   compaction. On first query it is sealed into a *mini* `ColumnIndex`
//!   of its own (cost `O(d log d)` for `d` delta rows — small by
//!   construction), cached until the next mutation.
//!
//! Every view ([`by_group`](TelemetryStore::by_group),
//! [`by_hours`](TelemetryStore::by_hours), …) and every fused kernel in
//! [`crate::aggregate`] answers by **merging run + delta** — two sorted
//! sources, one key-ordered two-way merge, no re-sort. When the delta
//! outgrows `max(1024, 5% of run)` (checked once per mutating call) or on
//! an explicit [`seal`](TelemetryStore::seal), the delta is **compacted**
//! into a new sealed run by [`ColumnIndex::merge`] — a linear `O(n + d)`
//! merge of two sorted sequences instead of an `O((n+d) log (n+d))`
//! rebuild.
//!
//! The pre-columnar flat-scan implementation survives unchanged as
//! [`reference::TelemetryStore`]: it is the executable specification that
//! the randomized agreement suite (`tests/agreement.rs`) pins the run+delta
//! engine against at every intermediate state of interleaved mutate/query
//! sequences, and the baseline the `telemetry_scan`/`telemetry_stream`
//! benches measure speedups over.

use crate::metric::Metric;
use crate::persist;
use crate::record::{GroupKey, MachineHourRecord, MachineId};
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::OnceLock;

/// Delta sizes below this never trigger automatic compaction: merging a
/// handful of rows per mutation would pay the `O(n)` run rewrite with no
/// read-side benefit.
const MIN_COMPACT_DELTA: usize = 1024;

/// Append-only store of machine-hour records with a sealed columnar run
/// plus a small delta buffer for streaming appends.
#[derive(Debug)]
pub struct TelemetryStore {
    /// Insertion-order record log ([`iter`](TelemetryStore::iter) and CSV
    /// round-trips preserve this order exactly). `records[..run_len]` is
    /// compacted into `run`; `records[run_len..]` is the delta.
    records: Vec<MachineHourRecord>,
    /// How many leading records are covered by the sealed run.
    run_len: usize,
    /// Sealed columnar run over `records[..run_len]` (row-equivalent as a
    /// multiset; the run stores them re-sorted).
    run: ColumnIndex,
    /// Lazily built mini-index over the delta tail, invalidated by every
    /// mutation.
    delta: OnceLock<ColumnIndex>,
    /// Attachment to an on-disk store directory, present only for stores
    /// created by [`TelemetryStore::open`]. In-memory stores (the
    /// default) carry `None` and reject [`TelemetryStore::sync`].
    backing: Option<persist::Backing>,
}

impl Default for TelemetryStore {
    fn default() -> Self {
        TelemetryStore {
            records: Vec::new(),
            run_len: 0,
            run: ColumnIndex::build(&[]),
            delta: OnceLock::new(),
            backing: None,
        }
    }
}

impl Clone for TelemetryStore {
    /// Clones the in-memory state only. A clone of a durable store is
    /// *detached*: it holds the same records but no file handles, so
    /// mutating the clone never races the original's directory and
    /// `sync()` on the clone reports [`persist::PersistError::NotDurable`].
    fn clone(&self) -> Self {
        TelemetryStore {
            records: self.records.clone(),
            run_len: self.run_len,
            run: self.run.clone(),
            delta: self.delta.clone(),
            backing: None,
        }
    }
}

/// The sealed columnar layout. Built by [`ColumnIndex::build`] (sort) or
/// [`ColumnIndex::merge`] (linear two-run compaction); immutable
/// afterwards. All `Vec<usize>` offset tables follow the CSR convention:
/// `offsets.len() == keys.len() + 1` and key `i` owns rows
/// `offsets[i]..offsets[i + 1]`.
//
// kea-lint: allow-file(index-in-library) — dense index kernel: every row
// position is produced by this module's own sort/merge/partition passes and
// every offset table is constructed with the CSR invariant checked in tests.
#[derive(Debug, Clone)]
pub(crate) struct ColumnIndex {
    /// All records sorted by `(group, hour, machine)`.
    pub(crate) sorted: Vec<MachineHourRecord>,
    /// Distinct groups, ascending.
    pub(crate) groups: Vec<GroupKey>,
    /// CSR offsets into `sorted` per group.
    pub(crate) group_offsets: Vec<usize>,
    /// Distinct machines, ascending. A machine's position here is its
    /// *dense id*.
    pub(crate) machines: Vec<MachineId>,
    /// Dense machine id of each row of `sorted`.
    pub(crate) machine_dense: Vec<u32>,
    /// Distinct hours, ascending.
    pub(crate) hours: Vec<u64>,
    /// Row positions of `sorted`, re-ordered by `(hour, machine)`.
    pub(crate) hour_order: Vec<usize>,
    /// CSR offsets into `hour_order` per distinct hour.
    pub(crate) hour_offsets: Vec<usize>,
    /// Row positions of `sorted`, re-ordered by `(machine, hour)`.
    pub(crate) machine_order: Vec<usize>,
    /// CSR offsets into `machine_order` per dense machine id.
    pub(crate) machine_offsets: Vec<usize>,
    /// Struct-of-arrays metric columns in `sorted` row order:
    /// `columns[m.index()][row] == m.value(&sorted[row].metrics)`.
    pub(crate) columns: Vec<Vec<f64>>,
}

/// The empty index — the delta side of every merge while the store is
/// sealed, so sealed-path views run the same code as merged views.
pub(crate) fn empty_index() -> &'static ColumnIndex {
    static EMPTY: OnceLock<ColumnIndex> = OnceLock::new();
    EMPTY.get_or_init(|| ColumnIndex::build(&[]))
}

impl ColumnIndex {
    /// Sorts and interns `records` into the columnar layout.
    pub(crate) fn build(records: &[MachineHourRecord]) -> Self {
        let mut sorted = records.to_vec();
        sorted.sort_unstable_by_key(|r| (r.group, r.hour, r.machine));
        Self::from_sorted(sorted)
    }

    /// Builds the index structures over records already sorted by
    /// `(group, hour, machine)` — the shared tail of [`ColumnIndex::build`]
    /// and the merge fallback paths.
    fn from_sorted(sorted: Vec<MachineHourRecord>) -> Self {
        let n = sorted.len();

        // Group runs → CSR offsets (sorted is group-major).
        let (groups, group_offsets) = group_runs(&sorted);

        // Machine interning: distinct sorted ids, then a dense id per row.
        let mut machines: Vec<MachineId> = sorted.iter().map(|r| r.machine).collect();
        machines.sort_unstable();
        machines.dedup();
        let machine_dense: Vec<u32> = sorted
            .iter()
            .map(|r| {
                // Every row's machine is in `machines` by construction,
                // and dense ids fit u32 because MachineId wraps a u32.
                machines.partition_point(|m| *m < r.machine) as u32
            })
            .collect();

        // Secondary orderings: by (hour, machine) and by (machine, hour).
        // Both are permutations of row positions into `sorted`, so the
        // heavy record payload is stored exactly once.
        let mut hour_order: Vec<usize> = (0..n).collect();
        hour_order.sort_unstable_by_key(|&row| (sorted[row].hour, sorted[row].machine));
        let (hours, hour_offsets) = hour_runs(&sorted, &hour_order);

        let mut machine_order: Vec<usize> = (0..n).collect();
        machine_order.sort_unstable_by_key(|&row| (machine_dense[row], sorted[row].hour));
        let machine_offsets = machine_offsets_of(&machine_dense, &machine_order, machines.len());

        // Struct-of-arrays metric columns, derived ratios included.
        let mut columns = vec![Vec::with_capacity(n); Metric::ALL.len()];
        for r in &sorted {
            let row = Metric::row_of(&r.metrics);
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }

        ColumnIndex {
            sorted,
            groups,
            group_offsets,
            machines,
            machine_dense,
            hours,
            hour_order,
            hour_offsets,
            machine_order,
            machine_offsets,
            columns,
        }
    }

    /// Rebuilds an index from the four core tables a segment file
    /// persists, re-deriving every other table and validating the
    /// structural invariants the query paths rely on. Returns `None` on
    /// any violation — a segment that decodes byte-exactly but encodes
    /// an inconsistent index (hand-edited, or written by a buggy
    /// future version) must be rejected, not queried.
    ///
    /// Persisting only `sorted`, `machines`, and the two permutations
    /// keeps segments near-dump-speed to write while the O(n) rebuild
    /// here stays far cheaper than the O(n log n) sorts that dominate
    /// [`ColumnIndex::build`].
    pub(crate) fn from_persisted(
        sorted: Vec<MachineHourRecord>,
        machines: Vec<MachineId>,
        hour_order: Vec<usize>,
        machine_order: Vec<usize>,
    ) -> Option<Self> {
        let n = sorted.len();
        let key = |r: &MachineHourRecord| (r.group, r.hour, r.machine);
        if !sorted.windows(2).all(|w| key(&w[0]) <= key(&w[1])) {
            return None;
        }
        // The machine list must be the exact distinct set: strictly
        // ascending, and every row's machine resolvable to a dense id.
        if !machines.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        let mut machine_dense = Vec::with_capacity(n);
        for r in &sorted {
            let dense = machines.partition_point(|m| *m < r.machine);
            if machines.get(dense) != Some(&r.machine) {
                return None;
            }
            machine_dense.push(dense as u32);
        }
        // No phantom machines: every interned id is referenced by a row.
        let mut machine_seen = vec![false; machines.len()];
        for &d in &machine_dense {
            if let Some(slot) = machine_seen.get_mut(d as usize) {
                *slot = true;
            }
        }
        if !machine_seen.iter().all(|&s| s) {
            return None;
        }

        // Each secondary ordering must be a true permutation of row
        // positions, sorted by its secondary key.
        let is_permutation = |order: &[usize]| {
            if order.len() != n {
                return false;
            }
            let mut seen = vec![false; n];
            for &row in order {
                match seen.get_mut(row) {
                    Some(slot) if !*slot => *slot = true,
                    _ => return false,
                }
            }
            true
        };
        if !is_permutation(&hour_order) || !is_permutation(&machine_order) {
            return None;
        }
        if !hour_order
            .windows(2)
            .all(|w| (sorted[w[0]].hour, sorted[w[0]].machine) <= (sorted[w[1]].hour, sorted[w[1]].machine))
        {
            return None;
        }
        if !machine_order
            .windows(2)
            .all(|w| (machine_dense[w[0]], sorted[w[0]].hour) <= (machine_dense[w[1]], sorted[w[1]].hour))
        {
            return None;
        }

        // Past validation the derivations mirror `from_sorted`.
        let (groups, group_offsets) = group_runs(&sorted);
        let (hours, hour_offsets) = hour_runs(&sorted, &hour_order);
        let machine_offsets = machine_offsets_of(&machine_dense, &machine_order, machines.len());
        let mut columns = vec![Vec::with_capacity(n); Metric::ALL.len()];
        for r in &sorted {
            let row = Metric::row_of(&r.metrics);
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }

        Some(ColumnIndex {
            sorted,
            groups,
            group_offsets,
            machines,
            machine_dense,
            hours,
            hour_order,
            hour_offsets,
            machine_order,
            machine_offsets,
            columns,
        })
    }

    /// Compacts two sealed indexes into one in `O(n + d)`: every table is
    /// produced by a linear two-way merge of the already-sorted inputs —
    /// no re-sort of the combined row set. `a` rows win ties, so merging
    /// the run (older) with the delta (newer) keeps arrival order among
    /// duplicate `(group, hour, machine)` keys.
    pub(crate) fn merge(a: &ColumnIndex, b: &ColumnIndex) -> ColumnIndex {
        if a.sorted.is_empty() {
            return b.clone();
        }
        if b.sorted.is_empty() {
            return a.clone();
        }
        let (an, bn) = (a.sorted.len(), b.sorted.len());
        let n = an + bn;

        // Primary merge by (group, hour, machine): records, plus the
        // source of every output row so columns and permutations can be
        // gathered without re-comparing.
        let key = |r: &MachineHourRecord| (r.group, r.hour, r.machine);
        let mut sorted = Vec::with_capacity(n);
        // from_b[out] says which side output row `out` came from;
        // a_to_out/b_to_out map each side's row to its output position.
        let mut from_b = Vec::with_capacity(n);
        let mut a_to_out = vec![0usize; an];
        let mut b_to_out = vec![0usize; bn];
        let (mut i, mut j) = (0usize, 0usize);
        while i < an || j < bn {
            let take_a = j >= bn || (i < an && key(&a.sorted[i]) <= key(&b.sorted[j]));
            if take_a {
                a_to_out[i] = sorted.len();
                sorted.push(a.sorted[i]);
                i += 1;
            } else {
                b_to_out[j] = sorted.len();
                sorted.push(b.sorted[j]);
                j += 1;
            }
            from_b.push(!take_a);
        }

        let (groups, group_offsets) = group_runs(&sorted);

        // Machine space: merge-dedup the two distinct lists, then remap
        // each side's dense ids into the merged space.
        let machines = merge_dedup(&a.machines, &b.machines);
        let a_remap = remap_into(&a.machines, &machines);
        let b_remap = remap_into(&b.machines, &machines);
        let mut machine_dense = Vec::with_capacity(n);
        let (mut i, mut j) = (0usize, 0usize);
        for &fb in &from_b {
            if fb {
                machine_dense.push(b_remap[b.machine_dense[j] as usize]);
                j += 1;
            } else {
                machine_dense.push(a_remap[a.machine_dense[i] as usize]);
                i += 1;
            }
        }

        // Metric columns: gather in output order, one side cursor each.
        let mut columns = Vec::with_capacity(Metric::ALL.len());
        for (ac, bc) in a.columns.iter().zip(&b.columns) {
            let mut col = Vec::with_capacity(n);
            let (mut i, mut j) = (0usize, 0usize);
            for &fb in &from_b {
                if fb {
                    col.push(bc[j]);
                    j += 1;
                } else {
                    col.push(ac[i]);
                    i += 1;
                }
            }
            columns.push(col);
        }

        // Secondary orderings: each side's permutation is already sorted
        // by the secondary key, so the merged permutation is a two-way
        // merge mapped through the row position maps.
        let hour_order = merge_permutation(
            a, b, &a.hour_order, &b.hour_order, &a_to_out, &b_to_out,
            |idx, row| (idx.sorted[row].hour, idx.sorted[row].machine),
        );
        let (hours, hour_offsets) = hour_runs(&sorted, &hour_order);

        let machine_order = merge_permutation(
            a, b, &a.machine_order, &b.machine_order, &a_to_out, &b_to_out,
            |idx, row| (idx.sorted[row].machine.0 as u64, idx.sorted[row].hour),
        );
        let machine_offsets = machine_offsets_of(&machine_dense, &machine_order, machines.len());

        ColumnIndex {
            sorted,
            groups,
            group_offsets,
            machines,
            machine_dense,
            hours,
            hour_order,
            hour_offsets,
            machine_order,
            machine_offsets,
            columns,
        }
    }

    /// Row range of one group in `sorted`, empty when absent.
    pub(crate) fn group_range(&self, group: GroupKey) -> Range<usize> {
        let gi = self.groups.partition_point(|g| *g < group);
        if self.groups.get(gi) == Some(&group) {
            self.group_offsets[gi]..self.group_offsets[gi + 1]
        } else {
            0..0
        }
    }

    /// Position range in `hour_order` covering hours `[start, end)`.
    pub(crate) fn hour_position_range(&self, start: u64, end: u64) -> Range<usize> {
        let lo = self.hours.partition_point(|&h| h < start);
        let hi = self.hours.partition_point(|&h| h < end);
        self.hour_offsets[lo]..self.hour_offsets[hi]
    }

    /// Dense id of `machine`, if present.
    fn dense_machine(&self, machine: MachineId) -> Option<usize> {
        let mi = self.machines.partition_point(|m| *m < machine);
        (self.machines.get(mi) == Some(&machine)).then_some(mi)
    }

    /// One contiguous metric column slice for a group.
    pub(crate) fn group_column(&self, group: GroupKey, metric: Metric) -> &[f64] {
        &self.columns[metric.index()][self.group_range(group)]
    }

    /// One group's records, sorted by `(hour, machine)`.
    pub(crate) fn group_rows(&self, group: GroupKey) -> std::slice::Iter<'_, MachineHourRecord> {
        self.sorted[self.group_range(group)].iter()
    }

    /// One machine's records, sorted by hour.
    pub(crate) fn machine_rows(
        &self,
        machine: MachineId,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        let range = match self.dense_machine(machine) {
            Some(dense) => self.machine_offsets[dense]..self.machine_offsets[dense + 1],
            None => 0..0,
        };
        self.machine_order[range]
            .iter()
            .map(move |&row| &self.sorted[row])
    }

    /// Records within `[start, end)` hours, sorted by `(hour, machine)`.
    pub(crate) fn hour_window(
        &self,
        start: u64,
        end: u64,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        self.hour_order[self.hour_position_range(start, end)]
            .iter()
            .map(move |&row| &self.sorted[row])
    }

    /// Records of a machine set within `[start, end)` hours, sorted by
    /// `(hour, machine)`; membership is one dense-id bitmap probe per
    /// candidate row.
    pub(crate) fn machines_hour_window(
        &self,
        machines: &BTreeSet<MachineId>,
        start: u64,
        end: u64,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        let bitmap = MachineBitmap::from_set(self, machines);
        self.hour_order[self.hour_position_range(start, end)]
            .iter()
            .filter(move |&&row| bitmap.contains(self.machine_dense[row]))
            .map(move |&row| &self.sorted[row])
    }
}

/// Distinct-group list and CSR offsets of group-major sorted records.
fn group_runs(sorted: &[MachineHourRecord]) -> (Vec<GroupKey>, Vec<usize>) {
    let mut groups = Vec::new();
    let mut offsets = vec![0];
    for (row, r) in sorted.iter().enumerate() {
        if groups.last() != Some(&r.group) {
            if !groups.is_empty() {
                offsets.push(row);
            }
            groups.push(r.group);
        }
    }
    offsets.push(sorted.len());
    if groups.is_empty() {
        offsets = vec![0];
    }
    (groups, offsets)
}

/// Distinct-hour list and CSR offsets of an `(hour, machine)`-ordered
/// row permutation.
fn hour_runs(sorted: &[MachineHourRecord], hour_order: &[usize]) -> (Vec<u64>, Vec<usize>) {
    let mut hours = Vec::new();
    let mut offsets = vec![0];
    for (pos, &row) in hour_order.iter().enumerate() {
        let h = sorted[row].hour;
        if hours.last() != Some(&h) {
            if !hours.is_empty() {
                offsets.push(pos);
            }
            hours.push(h);
        }
    }
    offsets.push(hour_order.len());
    if hours.is_empty() {
        offsets = vec![0];
    }
    (hours, offsets)
}

/// CSR offsets per dense machine id of a `(machine, hour)`-ordered
/// permutation (counting pass, no comparison).
fn machine_offsets_of(machine_dense: &[u32], machine_order: &[usize], n_machines: usize) -> Vec<usize> {
    let mut offsets = vec![0; n_machines + 1];
    for &row in machine_order {
        offsets[machine_dense[row] as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    offsets
}

/// Merge two sorted, deduplicated key lists into one.
pub(crate) fn merge_dedup<T: Copy + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    i += 1;
                    if x == y {
                        j += 1;
                    }
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        out.push(next);
    }
    out
}

/// For each element of sorted `sub` (a subset of sorted `all`), its
/// position in `all` — the dense-id remap table of a merge.
pub(crate) fn remap_into(sub: &[MachineId], all: &[MachineId]) -> Vec<u32> {
    let mut out = Vec::with_capacity(sub.len());
    let mut pos = 0usize;
    for &m in sub {
        while all.get(pos).is_some_and(|&x| x < m) {
            pos += 1;
        }
        out.push(pos as u32);
    }
    out
}

/// Merge two secondary-key-ordered row permutations into one over the
/// merged row space: compare by `key` on each side's own index, map
/// through the row position maps. `a` wins ties (run before delta).
fn merge_permutation<K: Ord>(
    a: &ColumnIndex,
    b: &ColumnIndex,
    a_order: &[usize],
    b_order: &[usize],
    a_to_out: &[usize],
    b_to_out: &[usize],
    key: impl Fn(&ColumnIndex, usize) -> K,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(a_order.len() + b_order.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_order.len() || j < b_order.len() {
        let take_a = j >= b_order.len()
            || (i < a_order.len() && key(a, a_order[i]) <= key(b, b_order[j]));
        if take_a {
            out.push(a_to_out[a_order[i]]);
            i += 1;
        } else {
            out.push(b_to_out[b_order[j]]);
            j += 1;
        }
    }
    out
}

/// Key-ordered two-way merge of a run view and a delta view, both sorted
/// by `(hour, machine)`; the run side wins ties.
fn merge_by_hour_machine<'a>(
    run: impl Iterator<Item = &'a MachineHourRecord> + 'a,
    delta: impl Iterator<Item = &'a MachineHourRecord> + 'a,
) -> impl Iterator<Item = &'a MachineHourRecord> + 'a {
    let mut run = run.peekable();
    let mut delta = delta.peekable();
    std::iter::from_fn(move || match (run.peek(), delta.peek()) {
        (Some(r), Some(d)) => {
            if (r.hour, r.machine) <= (d.hour, d.machine) {
                run.next()
            } else {
                delta.next()
            }
        }
        (Some(_), None) => run.next(),
        (None, _) => delta.next(),
    })
}

/// A set-membership bitmap over dense machine ids — the probe structure
/// behind [`TelemetryStore::by_machines_and_hours`]. One bit per distinct
/// machine in the window, so a 64k-machine fleet fits in 8 KiB.
struct MachineBitmap {
    words: Vec<u64>,
}

impl MachineBitmap {
    fn from_set(index: &ColumnIndex, machines: &BTreeSet<MachineId>) -> Self {
        let mut words = vec![0u64; index.machines.len().div_ceil(64)];
        for &m in machines {
            if let Some(dense) = index.dense_machine(m) {
                words[dense / 64] |= 1 << (dense % 64);
            }
        }
        MachineBitmap { words }
    }

    #[inline]
    fn contains(&self, dense: u32) -> bool {
        let dense = dense as usize;
        (self.words[dense / 64] >> (dense % 64)) & 1 == 1
    }
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a durable store rooted at directory `dir`, creating it on
    /// first use and recovering its contents otherwise: live segments
    /// are loaded (checksum-verified and structurally validated) and
    /// merged into the sealed run, then the write-ahead log is replayed
    /// into the delta tail, truncating any torn tail a crash left
    /// behind. Corruption surfaces as a typed
    /// [`persist::PersistError`] — recovery never panics.
    ///
    /// Note that recovery restores the *record multiset*, not the
    /// original insertion order: the sealed prefix comes back in
    /// `(group, hour, machine)` order (segments store the run
    /// pre-sorted), while the delta tail keeps exact append order.
    /// Every view and kernel is order-insensitive, so query results
    /// are unchanged.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self, persist::PersistError> {
        let recovered = persist::recover(dir.as_ref())?;
        let mut records = recovered.run.sorted.clone();
        let run_len = records.len();
        records.extend_from_slice(&recovered.delta);
        Ok(TelemetryStore {
            records,
            run_len,
            run: recovered.run,
            delta: OnceLock::new(),
            backing: Some(recovered.backing),
        })
    }

    /// Flushes every record appended since the last `sync` to stable
    /// storage. On the fast path this is one WAL frame and one fsync;
    /// when the store compacted since the last sync it instead spills
    /// the new run as a segment file, starts a fresh WAL holding only
    /// the delta tail, and atomically flips the manifest.
    ///
    /// Records are durable — guaranteed to survive a crash or kill —
    /// only once `sync` returns `Ok`. `push`/`extend`/`seal` never
    /// touch disk. Returns [`persist::PersistError::NotDurable`] on a
    /// store that was not created by [`TelemetryStore::open`].
    pub fn sync(&mut self) -> Result<(), persist::PersistError> {
        let Some(backing) = self.backing.as_mut() else {
            return Err(persist::PersistError::NotDurable);
        };
        backing.sync(&self.records, self.run_len, &self.run)
    }

    /// True when this store is attached to a directory and
    /// [`sync`](TelemetryStore::sync) will persist.
    pub fn is_durable(&self) -> bool {
        self.backing.is_some()
    }

    /// The directory backing this store, if durable.
    pub fn storage_dir(&self) -> Option<&std::path::Path> {
        self.backing.as_ref().map(|b| b.dir())
    }

    /// Appends one record into the delta buffer. The sealed run is left
    /// untouched; only the delta mini-index is invalidated. Non-finite
    /// metric blocks are rejected by debug assertion — the simulator must
    /// never emit them (CSV ingest checks them with a typed error
    /// instead, see [`crate::csv`]). Compacts when the delta outgrows its
    /// threshold.
    pub fn push(&mut self, record: MachineHourRecord) {
        debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
        self.delta.take();
        self.records.push(record);
        self.maybe_compact();
    }

    /// Appends many records as one batch: the compaction threshold is
    /// checked once per call, so a bulk load compacts at most once.
    pub fn extend(&mut self, records: impl IntoIterator<Item = MachineHourRecord>) {
        self.delta.take();
        for record in records {
            debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
            self.records.push(record);
        }
        self.maybe_compact();
    }

    /// Merges another store into this one (e.g. combining experiment and
    /// control windows collected separately). Routed through the same
    /// batch append — and therefore the same non-finite validation — as
    /// [`extend`](TelemetryStore::extend).
    pub fn merge(&mut self, other: TelemetryStore) {
        self.extend(other.records);
    }

    /// Reserves capacity for at least `additional` more records, so a
    /// streaming ingest loop that knows its batch size can avoid
    /// reallocating the record log mid-append.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Compacts the delta into the sealed run now. A no-op when the delta
    /// is empty; otherwise an `O(n + d)` two-run merge (the delta's own
    /// `O(d log d)` mini-sort is reused when a query already built it).
    /// Queries never require this — they merge run + delta on the fly —
    /// so calling it only moves the compaction cost to a chosen point
    /// (e.g. right after a simulation flush, before a timed analysis
    /// path).
    pub fn seal(&mut self) {
        if self.run_len < self.records.len() {
            self.compact();
        }
    }

    /// True when every record is compacted into the sealed run (no
    /// append since the last seal or automatic compaction).
    pub fn is_sealed(&self) -> bool {
        self.run_len == self.records.len()
    }

    /// Number of records currently sitting in the delta buffer.
    pub fn delta_len(&self) -> usize {
        self.records.len() - self.run_len
    }

    /// Compacts when the delta exceeds `max(1024, 5% of run)` — large
    /// enough that the `O(n)` run rewrite amortizes to a ~20× per-record
    /// write cost, small enough that query-time merges stay narrow.
    fn maybe_compact(&mut self) {
        if self.delta_len() > MIN_COMPACT_DELTA.max(self.run_len / 20) {
            self.compact();
        }
    }

    fn compact(&mut self) {
        let delta = self
            .delta
            .take()
            .unwrap_or_else(|| ColumnIndex::build(&self.records[self.run_len..]));
        self.run = if self.run_len == 0 {
            delta // first compaction: the delta IS the run, no merge copy
        } else {
            ColumnIndex::merge(&self.run, &delta)
        };
        self.run_len = self.records.len();
    }

    /// The sealed run.
    pub(crate) fn run_index(&self) -> &ColumnIndex {
        &self.run
    }

    /// The delta mini-index, built on first use per mutation generation;
    /// `None` when the store is fully compacted.
    pub(crate) fn delta_index(&self) -> Option<&ColumnIndex> {
        if self.is_sealed() {
            return None;
        }
        Some(
            self.delta
                .get_or_init(|| ColumnIndex::build(&self.records[self.run_len..])),
        )
    }

    /// The delta mini-index, or the shared empty index when sealed — so
    /// view and kernel code always merges exactly two sorted sources.
    pub(crate) fn delta_or_empty(&self) -> &ColumnIndex {
        self.delta_index().unwrap_or_else(|| empty_index())
    }

    /// All records, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &MachineHourRecord> {
        self.records.iter()
    }

    /// Records for one machine group, sorted by `(hour, machine)` — a
    /// run slice merged with a delta slice.
    pub fn by_group(&self, group: GroupKey) -> impl Iterator<Item = &MachineHourRecord> {
        merge_by_hour_machine(
            self.run.group_rows(group),
            self.delta_or_empty().group_rows(group),
        )
    }

    /// Records for one machine, sorted by hour.
    pub fn by_machine(&self, machine: MachineId) -> impl Iterator<Item = &MachineHourRecord> {
        merge_by_hour_machine(
            self.run.machine_rows(machine),
            self.delta_or_empty().machine_rows(machine),
        )
    }

    /// Records within `[start_hour, end_hour)`, sorted by
    /// `(hour, machine)`.
    pub fn by_hours(
        &self,
        start_hour: u64,
        end_hour: u64,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        merge_by_hour_machine(
            self.run.hour_window(start_hour, end_hour),
            self.delta_or_empty().hour_window(start_hour, end_hour),
        )
    }

    /// Records for a set of machines within `[start_hour, end_hour)` —
    /// the shape of a flighting measurement query. The hour range is an
    /// index probe on each side; machine membership is one bitmap test
    /// per candidate row (dense ids, no `BTreeSet` lookup per record).
    pub fn by_machines_and_hours<'a>(
        &'a self,
        machines: &BTreeSet<MachineId>,
        start_hour: u64,
        end_hour: u64,
    ) -> impl Iterator<Item = &'a MachineHourRecord> {
        merge_by_hour_machine(
            self.run.machines_hour_window(machines, start_hour, end_hour),
            self.delta_or_empty()
                .machines_hour_window(machines, start_hour, end_hour),
        )
    }

    /// The distinct machine groups present, sorted.
    pub fn groups(&self) -> Vec<GroupKey> {
        match self.delta_index() {
            None => self.run.groups.clone(),
            Some(delta) => merge_dedup(&self.run.groups, &delta.groups),
        }
    }

    /// The distinct machines present, sorted.
    pub fn machines(&self) -> Vec<MachineId> {
        match self.delta_index() {
            None => self.run.machines.clone(),
            Some(delta) => merge_dedup(&self.run.machines, &delta.machines),
        }
    }

    /// Inclusive-exclusive hour span `(min, max+1)` covered by the store,
    /// or `None` when empty. O(1) over the run; the delta contributes an
    /// O(1) read when its mini-index is built and a single min/max pass
    /// over the (small) buffer when not — this never forces an index
    /// build.
    pub fn hour_span(&self) -> Option<(u64, u64)> {
        let run_span = self
            .run
            .hours
            .first()
            .zip(self.run.hours.last())
            .map(|(&lo, &hi)| (lo, hi));
        let delta_span = match self.delta.get() {
            Some(delta) => delta
                .hours
                .first()
                .zip(delta.hours.last())
                .map(|(&lo, &hi)| (lo, hi)),
            None => self.records[self.run_len..]
                .iter()
                .map(|r| r.hour)
                .fold(None, |acc, h| match acc {
                    None => Some((h, h)),
                    Some((lo, hi)) => Some((lo.min(h), hi.max(h))),
                }),
        };
        match (run_span, delta_span) {
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d) + 1)),
            (Some((a, b)), None) | (None, Some((a, b))) => Some((a, b + 1)),
            (None, None) => None,
        }
    }
}

/// The pre-columnar flat store, preserved verbatim as an executable
/// specification. Every view is an O(N) scan with a per-record predicate
/// and every distinct-set query materializes a `BTreeSet` — exactly what
/// the run+delta engine replaces. The randomized agreement suite
/// (`tests/agreement.rs`) pins the two implementations to identical views
/// and 1e-9-identical aggregates at every intermediate state of
/// interleaved mutate/query sequences; the `telemetry_scan` and
/// `telemetry_stream` benches measure the speedup against it.
pub mod reference {
    use crate::record::{GroupKey, MachineHourRecord, MachineId};
    use std::collections::BTreeSet;

    /// Append-only store of machine-hour records (flat-scan reference).
    #[derive(Debug, Clone, Default)]
    pub struct TelemetryStore {
        records: Vec<MachineHourRecord>,
    }

    impl TelemetryStore {
        /// Creates an empty store.
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends one record.
        pub fn push(&mut self, record: MachineHourRecord) {
            debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
            self.records.push(record);
        }

        /// Appends many records.
        pub fn extend(&mut self, records: impl IntoIterator<Item = MachineHourRecord>) {
            for r in records {
                self.push(r);
            }
        }

        /// Number of records.
        pub fn len(&self) -> usize {
            self.records.len()
        }

        /// True when empty.
        pub fn is_empty(&self) -> bool {
            self.records.is_empty()
        }

        /// All records, in insertion order.
        pub fn iter(&self) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter()
        }

        /// Records for one machine group (predicate scan).
        pub fn by_group(&self, group: GroupKey) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter().filter(move |r| r.group == group)
        }

        /// Records for one machine (predicate scan).
        pub fn by_machine(&self, machine: MachineId) -> impl Iterator<Item = &MachineHourRecord> {
            self.records.iter().filter(move |r| r.machine == machine)
        }

        /// Records within `[start_hour, end_hour)` (predicate scan).
        pub fn by_hours(
            &self,
            start_hour: u64,
            end_hour: u64,
        ) -> impl Iterator<Item = &MachineHourRecord> {
            self.records
                .iter()
                .filter(move |r| r.hour >= start_hour && r.hour < end_hour)
        }

        /// Records for a set of machines within `[start_hour, end_hour)`
        /// (predicate scan with a `BTreeSet::contains` per record).
        pub fn by_machines_and_hours<'a>(
            &'a self,
            machines: &'a BTreeSet<MachineId>,
            start_hour: u64,
            end_hour: u64,
        ) -> impl Iterator<Item = &'a MachineHourRecord> {
            self.records.iter().filter(move |r| {
                r.hour >= start_hour && r.hour < end_hour && machines.contains(&r.machine)
            })
        }

        /// The distinct machine groups present, sorted.
        pub fn groups(&self) -> Vec<GroupKey> {
            let set: BTreeSet<GroupKey> = self.records.iter().map(|r| r.group).collect();
            set.into_iter().collect()
        }

        /// The distinct machines present, sorted.
        pub fn machines(&self) -> Vec<MachineId> {
            let set: BTreeSet<MachineId> = self.records.iter().map(|r| r.machine).collect();
            set.into_iter().collect()
        }

        /// Inclusive-exclusive hour span `(min, max+1)` covered by the
        /// store, or `None` when empty (two-pass, as shipped).
        pub fn hour_span(&self) -> Option<(u64, u64)> {
            let min = self.records.iter().map(|r| r.hour).min()?;
            let max = self.records.iter().map(|r| r.hour).max()?;
            Some((min, max + 1))
        }

        /// Merges another store into this one, routed through
        /// [`extend`](TelemetryStore::extend) so merged records face the
        /// same non-finite validation as pushed ones.
        pub fn merge(&mut self, other: TelemetryStore) {
            self.extend(other.records);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::record::{MetricValues, ScId, SkuId};

        /// Regression twin of the columnar store's test: the reference
        /// `merge` must apply the same non-finite validation as `push`.
        #[test]
        #[cfg(debug_assertions)]
        #[should_panic(expected = "non-finite telemetry emitted")]
        fn merge_rejects_non_finite_records() {
            let bad_record = MachineHourRecord {
                machine: MachineId(1),
                group: GroupKey::new(SkuId(0), ScId(0)),
                hour: 0,
                metrics: MetricValues {
                    cpu_utilization: f64::INFINITY,
                    ..Default::default()
                },
            };
            let bad = TelemetryStore {
                records: vec![bad_record],
            };
            let mut store = TelemetryStore::new();
            store.merge(bad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetricValues, ScId, SkuId};

    fn rec(machine: u32, sku: u16, hour: u64, cpu: f64) -> MachineHourRecord {
        MachineHourRecord {
            machine: MachineId(machine),
            group: GroupKey::new(SkuId(sku), ScId(0)),
            hour,
            metrics: MetricValues {
                cpu_utilization: cpu,
                ..Default::default()
            },
        }
    }

    #[test]
    fn push_and_filters() {
        let mut store = TelemetryStore::new();
        store.push(rec(1, 0, 0, 10.0));
        store.push(rec(1, 0, 1, 20.0));
        store.push(rec(2, 1, 0, 30.0));
        assert_eq!(store.len(), 3);
        assert_eq!(store.by_machine(MachineId(1)).count(), 2);
        assert_eq!(
            store.by_group(GroupKey::new(SkuId(1), ScId(0))).count(),
            1
        );
        assert_eq!(store.by_hours(0, 1).count(), 2);
        assert_eq!(store.by_hours(1, 2).count(), 1);
    }

    #[test]
    fn groups_and_machines_sorted_unique() {
        let mut store = TelemetryStore::new();
        store.push(rec(3, 2, 0, 0.0));
        store.push(rec(1, 0, 0, 0.0));
        store.push(rec(3, 2, 1, 0.0));
        assert_eq!(store.machines(), vec![MachineId(1), MachineId(3)]);
        let groups = store.groups();
        assert_eq!(groups.len(), 2);
        assert!(groups[0] < groups[1]);
    }

    #[test]
    fn hour_span() {
        let mut store = TelemetryStore::new();
        assert_eq!(store.hour_span(), None);
        store.push(rec(1, 0, 5, 0.0));
        store.push(rec(1, 0, 9, 0.0));
        // One-pass unsealed path must not force a delta index build.
        assert_eq!(store.hour_span(), Some((5, 10)));
        assert!(!store.is_sealed());
        // Sealed path reads the run's hour index in O(1).
        store.seal();
        assert_eq!(store.hour_span(), Some((5, 10)));
        // Straddling run and delta: span covers both sides.
        store.push(rec(1, 0, 2, 0.0));
        store.push(rec(1, 0, 30, 0.0));
        assert_eq!(store.hour_span(), Some((2, 31)));
    }

    #[test]
    fn machines_and_hours_filter() {
        let mut store = TelemetryStore::new();
        for m in 0..4 {
            for h in 0..5 {
                store.push(rec(m, 0, h, 0.0));
            }
        }
        let subset: BTreeSet<MachineId> = [MachineId(1), MachineId(3)].into_iter().collect();
        assert_eq!(store.by_machines_and_hours(&subset, 1, 3).count(), 4);
        // Machines the store has never seen are simply absent.
        let strangers: BTreeSet<MachineId> = [MachineId(99)].into_iter().collect();
        assert_eq!(store.by_machines_and_hours(&strangers, 0, 5).count(), 0);
    }

    #[test]
    fn merge_combines_records() {
        let mut a = TelemetryStore::new();
        a.push(rec(1, 0, 0, 0.0));
        let mut b = TelemetryStore::new();
        b.push(rec(2, 0, 0, 0.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    /// Regression (previously: `merge` appended `other.records` directly,
    /// bypassing the non-finite guard that `push` enforces, so a store
    /// assembled from per-window merges could smuggle NaN metrics into
    /// the kernels). `merge` now routes through the same validated batch
    /// append as `extend`.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite telemetry emitted")]
    fn merge_rejects_non_finite_records() {
        // Build the offending store around the validated entry points,
        // the way a corrupted window would arrive from outside.
        let bad = TelemetryStore {
            records: vec![rec(1, 0, 0, f64::NAN)],
            ..TelemetryStore::default()
        };
        let mut store = TelemetryStore::new();
        store.push(rec(2, 0, 0, 1.0));
        store.merge(bad);
    }

    #[test]
    fn extend_from_iterator() {
        let mut store = TelemetryStore::new();
        store.extend((0..10).map(|h| rec(1, 0, h, h as f64)));
        assert_eq!(store.len(), 10);
        assert!(store.iter().all(|r| r.machine == MachineId(1)));
    }

    #[test]
    fn by_group_is_hour_machine_sorted() {
        let mut store = TelemetryStore::new();
        // Shuffled insertion order.
        store.push(rec(2, 1, 5, 0.0));
        store.push(rec(1, 0, 3, 0.0));
        store.push(rec(3, 0, 1, 0.0));
        store.push(rec(1, 0, 1, 0.0));
        let g0: Vec<_> = store.by_group(GroupKey::new(SkuId(0), ScId(0))).collect();
        assert_eq!(g0.len(), 3);
        assert!(g0.windows(2).all(|w| (w[0].hour, w[0].machine) <= (w[1].hour, w[1].machine)));
        assert_eq!(
            store.by_group(GroupKey::new(SkuId(9), ScId(0))).count(),
            0
        );
    }

    #[test]
    fn append_after_seal_lands_in_delta() {
        let mut store = TelemetryStore::new();
        store.push(rec(1, 0, 0, 1.0));
        store.seal();
        assert!(store.is_sealed());
        store.push(rec(2, 0, 1, 2.0));
        assert!(!store.is_sealed(), "append must open a delta");
        assert_eq!(store.delta_len(), 1);
        // Views merge run + delta without compacting.
        assert_eq!(store.by_hours(0, 2).count(), 2);
        assert_eq!(store.machines().len(), 2);
        assert!(!store.is_sealed(), "queries must not compact");
        // Explicit seal folds the delta into the run.
        store.seal();
        assert!(store.is_sealed());
        assert_eq!(store.delta_len(), 0);
        assert_eq!(store.by_hours(0, 2).count(), 2);
    }

    #[test]
    fn merged_views_interleave_run_and_delta() {
        let mut store = TelemetryStore::new();
        // Run: hours 0, 2, 4 on machine 1; delta: hours 1, 2, 3 on
        // machines 2/1/1 — merged views must interleave by (hour, machine).
        for h in [0u64, 2, 4] {
            store.push(rec(1, 0, h, 1.0));
        }
        store.seal();
        store.push(rec(2, 0, 1, 2.0));
        store.push(rec(1, 0, 2, 2.0));
        store.push(rec(1, 0, 3, 2.0));
        let hours: Vec<(u64, u32)> = store
            .by_group(GroupKey::new(SkuId(0), ScId(0)))
            .map(|r| (r.hour, r.machine.0))
            .collect();
        assert_eq!(hours, vec![(0, 1), (1, 2), (2, 1), (2, 1), (3, 1), (4, 1)]);
        // by_machine merges the machine-1 sides by hour.
        let m1: Vec<u64> = store.by_machine(MachineId(1)).map(|r| r.hour).collect();
        assert_eq!(m1, vec![0, 2, 2, 3, 4]);
        // Duplicate (machine, hour) keys: run rows come first.
        let dup: Vec<f64> = store
            .by_hours(2, 3)
            .map(|r| r.metrics.cpu_utilization)
            .collect();
        assert_eq!(dup, vec![1.0, 2.0]);
    }

    #[test]
    fn automatic_compaction_past_threshold() {
        let mut store = TelemetryStore::new();
        // One batch bigger than the floor compacts once at the end.
        store.extend((0..1500u64).map(|i| rec((i % 7) as u32, 0, i, i as f64)));
        assert!(store.is_sealed(), "bulk extend compacts at call end");
        // Small pushes stay in the delta…
        for i in 0..100u64 {
            store.push(rec(1, 0, 2000 + i, 0.0));
        }
        assert!(!store.is_sealed());
        assert_eq!(store.delta_len(), 100);
        // …until the per-call check crosses max(1024, 5% of run).
        store.extend((0..1000u64).map(|i| rec(2, 0, 3000 + i, 0.0)));
        assert!(store.is_sealed(), "threshold crossing compacts");
        assert_eq!(store.len(), 2600);
        assert_eq!(store.by_hours(0, 5000).count(), 2600);
    }

    #[test]
    fn compaction_merge_equals_full_rebuild() {
        // The merged run must be structurally identical to an index built
        // from scratch over the same records. Keys are unique per record
        // (disjoint machine ranges per batch): with duplicate keys the
        // unstable build sort and the stable merge may legally order the
        // duplicates' payloads differently — that case is covered as a
        // multiset by the agreement suite.
        let mut merged = TelemetryStore::new();
        let mut rebuilt = TelemetryStore::new();
        let batches: Vec<Vec<MachineHourRecord>> = (0..5u64)
            .map(|b| {
                (0..40u64)
                    .map(|i| rec((b * 100 + i % 10) as u32, (b % 3) as u16, (i * 3 + b) % 50, (b + i) as f64))
                    .collect()
            })
            .collect();
        for batch in &batches {
            merged.extend(batch.iter().copied());
            merged.seal(); // force a compaction per batch → repeated merges
            rebuilt.extend(batch.iter().copied());
        }
        rebuilt.seal();
        let (a, b) = (merged.run_index(), rebuilt.run_index());
        assert_eq!(a.sorted, b.sorted);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.group_offsets, b.group_offsets);
        assert_eq!(a.machines, b.machines);
        assert_eq!(a.machine_dense, b.machine_dense);
        assert_eq!(a.hours, b.hours);
        assert_eq!(a.hour_offsets, b.hour_offsets);
        assert_eq!(a.machine_offsets, b.machine_offsets);
        assert_eq!(a.columns, b.columns);
        // Secondary permutations may order duplicate keys differently;
        // they must agree after mapping to records.
        let gather = |idx: &ColumnIndex, order: &[usize]| -> Vec<MachineHourRecord> {
            order.iter().map(|&row| idx.sorted[row]).collect()
        };
        assert_eq!(gather(a, &a.hour_order), gather(b, &b.hour_order));
        assert_eq!(gather(a, &a.machine_order), gather(b, &b.machine_order));
    }

    #[test]
    fn index_csr_invariants() {
        let mut store = TelemetryStore::new();
        for m in 0..5u32 {
            for h in [0u64, 2, 7] {
                store.push(rec(m, (m % 2) as u16, h, m as f64));
            }
        }
        store.seal();
        let idx = store.run_index();
        assert_eq!(idx.group_offsets.len(), idx.groups.len() + 1);
        assert_eq!(idx.hour_offsets.len(), idx.hours.len() + 1);
        assert_eq!(idx.machine_offsets.len(), idx.machines.len() + 1);
        assert_eq!(*idx.group_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.hour_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.machine_offsets.last().unwrap(), store.len());
        assert!(idx.group_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(idx.hour_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(idx.machine_offsets.windows(2).all(|w| w[0] <= w[1]));
        // Columns are per-metric and full-length.
        assert_eq!(idx.columns.len(), Metric::ALL.len());
        assert!(idx.columns.iter().all(|c| c.len() == store.len()));
        // Dense ids round-trip.
        for (row, r) in idx.sorted.iter().enumerate() {
            assert_eq!(idx.machines[idx.machine_dense[row] as usize], r.machine);
        }
    }

    #[test]
    fn merged_index_csr_invariants() {
        // Same invariants on a run produced by ColumnIndex::merge.
        let mut store = TelemetryStore::new();
        for m in 0..5u32 {
            for h in [0u64, 2, 7] {
                store.push(rec(m, (m % 2) as u16, h, m as f64));
            }
        }
        store.seal();
        for m in 3..9u32 {
            for h in [1u64, 2, 9] {
                store.push(rec(m, (m % 3) as u16, h, m as f64));
            }
        }
        store.seal(); // second seal merges run + delta
        let idx = store.run_index();
        assert_eq!(idx.group_offsets.len(), idx.groups.len() + 1);
        assert_eq!(idx.hour_offsets.len(), idx.hours.len() + 1);
        assert_eq!(idx.machine_offsets.len(), idx.machines.len() + 1);
        assert_eq!(*idx.group_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.hour_offsets.last().unwrap(), store.len());
        assert_eq!(*idx.machine_offsets.last().unwrap(), store.len());
        assert!(idx.sorted.windows(2).all(|w| {
            (w[0].group, w[0].hour, w[0].machine) <= (w[1].group, w[1].hour, w[1].machine)
        }));
        for (row, r) in idx.sorted.iter().enumerate() {
            assert_eq!(idx.machines[idx.machine_dense[row] as usize], r.machine);
        }
        for (col, metric) in idx.columns.iter().zip(Metric::ALL) {
            for (row, r) in idx.sorted.iter().enumerate() {
                assert_eq!(col[row], metric.value(&r.metrics));
            }
        }
    }

    #[test]
    fn empty_store_indexed_queries() {
        let mut store = TelemetryStore::new();
        store.seal();
        assert!(store.groups().is_empty());
        assert!(store.machines().is_empty());
        assert_eq!(store.hour_span(), None);
        assert_eq!(store.by_hours(0, 10).count(), 0);
        assert_eq!(store.by_machine(MachineId(0)).count(), 0);
    }
}
