//! In-memory telemetry store.
//!
//! The production KEA pipeline lands metrics in Cosmos itself and re-reads
//! them daily; our reproduction keeps the observation window in memory
//! (a 7-day window for a simulated cluster is a few million records at
//! most). The store is append-only with filtered views — exactly the
//! access pattern of the Performance Monitor.

use crate::record::{GroupKey, MachineHourRecord, MachineId};
use std::collections::BTreeSet;

/// Append-only store of machine-hour records.
#[derive(Debug, Clone, Default)]
pub struct TelemetryStore {
    records: Vec<MachineHourRecord>,
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record. Non-finite metric blocks are rejected by
    /// debug assertion — the simulator must never emit them.
    pub fn push(&mut self, record: MachineHourRecord) {
        debug_assert!(record.metrics.is_finite(), "non-finite telemetry emitted");
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = MachineHourRecord>) {
        for r in records {
            self.push(r);
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &MachineHourRecord> {
        self.records.iter()
    }

    /// Records for one machine group.
    pub fn by_group(&self, group: GroupKey) -> impl Iterator<Item = &MachineHourRecord> {
        self.records.iter().filter(move |r| r.group == group)
    }

    /// Records for one machine.
    pub fn by_machine(&self, machine: MachineId) -> impl Iterator<Item = &MachineHourRecord> {
        self.records.iter().filter(move |r| r.machine == machine)
    }

    /// Records within `[start_hour, end_hour)`.
    pub fn by_hours(
        &self,
        start_hour: u64,
        end_hour: u64,
    ) -> impl Iterator<Item = &MachineHourRecord> {
        self.records
            .iter()
            .filter(move |r| r.hour >= start_hour && r.hour < end_hour)
    }

    /// Records for a set of machines within `[start_hour, end_hour)` —
    /// the shape of a flighting measurement query.
    pub fn by_machines_and_hours<'a>(
        &'a self,
        machines: &'a BTreeSet<MachineId>,
        start_hour: u64,
        end_hour: u64,
    ) -> impl Iterator<Item = &'a MachineHourRecord> {
        self.records.iter().filter(move |r| {
            r.hour >= start_hour && r.hour < end_hour && machines.contains(&r.machine)
        })
    }

    /// The distinct machine groups present, sorted.
    pub fn groups(&self) -> Vec<GroupKey> {
        let set: BTreeSet<GroupKey> = self.records.iter().map(|r| r.group).collect();
        set.into_iter().collect()
    }

    /// The distinct machines present, sorted.
    pub fn machines(&self) -> Vec<MachineId> {
        let set: BTreeSet<MachineId> = self.records.iter().map(|r| r.machine).collect();
        set.into_iter().collect()
    }

    /// Inclusive-exclusive hour span `(min, max+1)` covered by the store,
    /// or `None` when empty.
    pub fn hour_span(&self) -> Option<(u64, u64)> {
        let min = self.records.iter().map(|r| r.hour).min()?;
        let max = self.records.iter().map(|r| r.hour).max()?;
        Some((min, max + 1))
    }

    /// Merges another store into this one (e.g. combining experiment and
    /// control windows collected separately).
    pub fn merge(&mut self, other: TelemetryStore) {
        self.records.extend(other.records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetricValues, ScId, SkuId};

    fn rec(machine: u32, sku: u16, hour: u64, cpu: f64) -> MachineHourRecord {
        MachineHourRecord {
            machine: MachineId(machine),
            group: GroupKey::new(SkuId(sku), ScId(0)),
            hour,
            metrics: MetricValues {
                cpu_utilization: cpu,
                ..Default::default()
            },
        }
    }

    #[test]
    fn push_and_filters() {
        let mut store = TelemetryStore::new();
        store.push(rec(1, 0, 0, 10.0));
        store.push(rec(1, 0, 1, 20.0));
        store.push(rec(2, 1, 0, 30.0));
        assert_eq!(store.len(), 3);
        assert_eq!(store.by_machine(MachineId(1)).count(), 2);
        assert_eq!(
            store.by_group(GroupKey::new(SkuId(1), ScId(0))).count(),
            1
        );
        assert_eq!(store.by_hours(0, 1).count(), 2);
        assert_eq!(store.by_hours(1, 2).count(), 1);
    }

    #[test]
    fn groups_and_machines_sorted_unique() {
        let mut store = TelemetryStore::new();
        store.push(rec(3, 2, 0, 0.0));
        store.push(rec(1, 0, 0, 0.0));
        store.push(rec(3, 2, 1, 0.0));
        assert_eq!(store.machines(), vec![MachineId(1), MachineId(3)]);
        let groups = store.groups();
        assert_eq!(groups.len(), 2);
        assert!(groups[0] < groups[1]);
    }

    #[test]
    fn hour_span() {
        let mut store = TelemetryStore::new();
        assert_eq!(store.hour_span(), None);
        store.push(rec(1, 0, 5, 0.0));
        store.push(rec(1, 0, 9, 0.0));
        assert_eq!(store.hour_span(), Some((5, 10)));
    }

    #[test]
    fn machines_and_hours_filter() {
        let mut store = TelemetryStore::new();
        for m in 0..4 {
            for h in 0..5 {
                store.push(rec(m, 0, h, 0.0));
            }
        }
        let subset: BTreeSet<MachineId> = [MachineId(1), MachineId(3)].into_iter().collect();
        assert_eq!(store.by_machines_and_hours(&subset, 1, 3).count(), 4);
    }

    #[test]
    fn merge_combines_records() {
        let mut a = TelemetryStore::new();
        a.push(rec(1, 0, 0, 0.0));
        let mut b = TelemetryStore::new();
        b.push(rec(2, 0, 0, 0.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn extend_from_iterator() {
        let mut store = TelemetryStore::new();
        store.extend((0..10).map(|h| rec(1, 0, h, h as f64)));
        assert_eq!(store.len(), 10);
        assert!(store.iter().all(|r| r.machine == MachineId(1)));
    }
}
