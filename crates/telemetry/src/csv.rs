//! CSV persistence for telemetry.
//!
//! The production Performance Monitor lands its metrics in Cosmos tables;
//! the portable equivalent is a flat CSV with one row per machine-hour.
//! Hand-rolled (the values are all numeric, no quoting needed), with a
//! header that doubles as a schema check on import — a file written by a
//! different version of the schema is rejected loudly, not misparsed.

use crate::record::{GroupKey, MachineHourRecord, MachineId, MetricValues, ScId, SkuId};
use crate::store::TelemetryStore;
use std::fmt;
use std::io::{BufRead, Write};

/// The column header; also the schema version marker.
pub const CSV_HEADER: &str = "machine,sku,sc,hour,total_data_read_gb,tasks_finished,\
task_exec_time_s,cpu_time_s,cpu_utilization,avg_running_containers,avg_task_latency_s,\
queued_containers,queue_latency_p99_ms,power_draw_w,ssd_used_gb,ram_used_gb,cores_used,\
network_used_gbps";

/// Column names of [`CSV_HEADER`] by field position, for error reporting.
const COLUMN_NAMES: [&str; 18] = [
    "machine",
    "sku",
    "sc",
    "hour",
    "total_data_read_gb",
    "tasks_finished",
    "task_exec_time_s",
    "cpu_time_s",
    "cpu_utilization",
    "avg_running_containers",
    "avg_task_latency_s",
    "queued_containers",
    "queue_latency_p99_ms",
    "power_draw_w",
    "ssd_used_gb",
    "ram_used_gb",
    "cores_used",
    "network_used_gbps",
];

/// Errors raised while reading telemetry CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line did not match [`CSV_HEADER`].
    SchemaMismatch {
        /// The header actually found.
        found: String,
    },
    /// A data row could not be parsed (1-based line number and reason).
    BadRow {
        /// Line number in the file.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// An identifier field parsed as an integer but exceeds the range of
    /// its typed destination (`machine` is a `u32`, `sku` a `u16`, `sc` a
    /// `u8`). Previously these were narrowed with `as`, so a machine id
    /// ≥ 2³² silently aliased to a different machine; now the conversion
    /// is checked and the offending site is named.
    ValueOutOfRange {
        /// Line number in the file.
        line: usize,
        /// Header name of the offending column.
        column: &'static str,
        /// The value found in the file.
        found: u64,
        /// Largest value the destination type can hold.
        max: u64,
    },
    /// A metric field parsed as a float but was NaN or infinite. Typed
    /// separately from [`CsvError::BadRow`] so ingestion pipelines can
    /// distinguish "malformed file" from "well-formed file carrying
    /// poisoned measurements" — the store itself only guards against
    /// non-finite values with a `debug_assert`, so this check is the
    /// release-build gate.
    NonFinite {
        /// Line number in the file.
        line: usize,
        /// Header name of the offending column.
        column: &'static str,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::SchemaMismatch { found } => {
                write!(f, "telemetry CSV header mismatch; found: {found}")
            }
            CsvError::BadRow { line, reason } => write!(f, "bad row at line {line}: {reason}"),
            CsvError::ValueOutOfRange {
                line,
                column,
                found,
                max,
            } => write!(
                f,
                "value out of range at line {line}, column {column}: {found} exceeds {max}"
            ),
            CsvError::NonFinite { line, column } => {
                write!(f, "non-finite value at line {line}, column {column}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Checked narrowing for the typed identifier columns (`machine` u32,
/// `sku` u16, `sc` u8). `parse::<u64>` already rejects values past
/// `u64::MAX` with a [`CsvError::BadRow`]; this closes the remaining gap
/// between u64 and the destination width, which an `as` cast used to
/// wrap silently — a machine id of 2³² aliased to machine 0. `max` is
/// the destination's ceiling, carried separately only for the message.
fn narrow<T: TryFrom<u64>>(
    value: u64,
    max: u64,
    line: usize,
    column: &'static str,
) -> Result<T, CsvError> {
    T::try_from(value).map_err(|_| CsvError::ValueOutOfRange {
        line,
        column,
        found: value,
        max,
    })
}

/// Writes the store as CSV (header + one row per record, insertion order).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(store: &TelemetryStore, mut out: W) -> Result<(), CsvError> {
    writeln!(out, "{CSV_HEADER}")?;
    for r in store.iter() {
        let m = &r.metrics;
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.machine.0,
            r.group.sku.0,
            r.group.sc.0,
            r.hour,
            m.total_data_read_gb,
            m.tasks_finished,
            m.task_exec_time_s,
            m.cpu_time_s,
            m.cpu_utilization,
            m.avg_running_containers,
            m.avg_task_latency_s,
            m.queued_containers,
            m.queue_latency_p99_ms,
            m.power_draw_w,
            m.ssd_used_gb,
            m.ram_used_gb,
            m.cores_used,
            m.network_used_gbps,
        )?;
    }
    Ok(())
}

/// Reads a store back from CSV produced by [`write_csv`].
///
/// # Errors
/// Rejects a wrong header ([`CsvError::SchemaMismatch`]), malformed rows
/// ([`CsvError::BadRow`] with the line number), and identifier values
/// that do not fit their typed destination
/// ([`CsvError::ValueOutOfRange`] with line and column); propagates I/O
/// errors.
pub fn read_csv<R: BufRead>(input: R) -> Result<TelemetryStore, CsvError> {
    let mut lines = input.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != CSV_HEADER {
        return Err(CsvError::SchemaMismatch { found: header });
    }
    let mut store = TelemetryStore::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2; // 1-based, after the header
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 18 {
            return Err(CsvError::BadRow {
                line: line_no,
                reason: format!("expected 18 fields, got {}", fields.len()),
            });
        }
        let field = |idx: usize| -> &str { fields.get(idx).copied().unwrap_or("").trim() };
        let int = |idx: usize| -> Result<u64, CsvError> {
            field(idx).parse().map_err(|e| CsvError::BadRow {
                line: line_no,
                reason: format!("field {idx}: {e}"),
            })
        };
        let num = |idx: usize| -> Result<f64, CsvError> {
            let v: f64 = field(idx).parse().map_err(|e| CsvError::BadRow {
                line: line_no,
                reason: format!("field {idx}: {e}"),
            })?;
            if !v.is_finite() {
                return Err(CsvError::NonFinite {
                    line: line_no,
                    column: COLUMN_NAMES.get(idx).copied().unwrap_or("?"),
                });
            }
            Ok(v)
        };
        store.push(MachineHourRecord {
            machine: MachineId(narrow(int(0)?, u64::from(u32::MAX), line_no, "machine")?),
            group: GroupKey::new(
                SkuId(narrow(int(1)?, u64::from(u16::MAX), line_no, "sku")?),
                ScId(narrow(int(2)?, u64::from(u8::MAX), line_no, "sc")?),
            ),
            // `hour` is a u64 end to end: `parse::<u64>` itself rejects
            // overflow with a BadRow, so no narrowing is involved.
            hour: int(3)?,
            metrics: MetricValues {
                total_data_read_gb: num(4)?,
                tasks_finished: num(5)?,
                task_exec_time_s: num(6)?,
                cpu_time_s: num(7)?,
                cpu_utilization: num(8)?,
                avg_running_containers: num(9)?,
                avg_task_latency_s: num(10)?,
                queued_containers: num(11)?,
                queue_latency_p99_ms: num(12)?,
                power_draw_w: num(13)?,
                ssd_used_gb: num(14)?,
                ram_used_gb: num(15)?,
                cores_used: num(16)?,
                network_used_gbps: num(17)?,
            },
        });
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> TelemetryStore {
        let mut s = TelemetryStore::new();
        for m in 0..3u32 {
            for h in 0..4u64 {
                s.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(m as u16 % 2), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        total_data_read_gb: 1.5 * (m + 1) as f64,
                        tasks_finished: 10.0 + h as f64,
                        task_exec_time_s: 1234.5,
                        cpu_time_s: 1000.25,
                        cpu_utilization: 61.25,
                        avg_running_containers: 11.5,
                        avg_task_latency_s: 300.125,
                        queued_containers: 0.5,
                        queue_latency_p99_ms: 4500.0,
                        power_draw_w: 260.5,
                        ssd_used_gb: 400.0,
                        ram_used_gb: 96.5,
                        cores_used: 20.25,
                        network_used_gbps: 3.75,
                    },
                });
            }
        }
        s
    }

    #[test]
    fn round_trips_exactly() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_csv(&store, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), store.len());
        for (a, b) in store.iter().zip(back.iter()) {
            assert_eq!(a, b, "record drift through CSV");
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let data = "machine,hour\n1,2\n";
        assert!(matches!(
            read_csv(data.as_bytes()),
            Err(CsvError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn rejects_short_rows_with_line_number() {
        let data = format!("{CSV_HEADER}\n1,2,3\n");
        match read_csv(data.as_bytes()) {
            Err(CsvError::BadRow { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected BadRow, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_values() {
        let good = {
            let mut buf = Vec::new();
            write_csv(&sample_store(), &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let corrupted = good.replacen("61.25", "not-a-number", 1);
        assert!(matches!(
            read_csv(corrupted.as_bytes()),
            Err(CsvError::BadRow { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_values_with_typed_error() {
        let good = {
            let mut buf = Vec::new();
            write_csv(&sample_store(), &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        // "NaN" and "inf" both parse as f64 — a release build with only
        // the store's debug_assert would ingest them silently. The typed
        // error names the line and the column.
        let nan_row = good.replacen("61.25", "NaN", 1);
        match read_csv(nan_row.as_bytes()) {
            Err(CsvError::NonFinite { line, column }) => {
                assert_eq!(line, 2);
                assert_eq!(column, "cpu_utilization");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        let infinite = good.replacen("260.5", "inf", 1);
        match read_csv(infinite.as_bytes()) {
            Err(CsvError::NonFinite { line, column }) => {
                assert_eq!(line, 2);
                assert_eq!(column, "power_draw_w");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    /// Regression (previously: `machine: MachineId(int(0)? as u32)` —
    /// a machine id of exactly 2³² wrapped to machine 0 and silently
    /// aliased its telemetry onto a different machine). The conversion
    /// is now checked and names the line and column.
    #[test]
    fn rejects_machine_id_past_u32() {
        let row = format!("{CSV_HEADER}\n{},0,0,0{}\n", 1u64 << 32, ",1.0".repeat(14));
        match read_csv(row.as_bytes()) {
            Err(CsvError::ValueOutOfRange {
                line,
                column,
                found,
                max,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(column, "machine");
                assert_eq!(found, 1u64 << 32);
                assert_eq!(max, u64::from(u32::MAX));
            }
            other => panic!("expected ValueOutOfRange, got {other:?}"),
        }
        // The same id minus one is the last valid machine and must load.
        let row = format!("{CSV_HEADER}\n{},0,0,0{}\n", u32::MAX, ",1.0".repeat(14));
        let store = read_csv(row.as_bytes()).unwrap();
        assert_eq!(store.iter().next().map(|r| r.machine), Some(MachineId(u32::MAX)));
    }

    /// Regression twin for the group fields (previously `as u16` /
    /// `as u8`): a SKU of 2¹⁶ aliased to SKU 0 and an SC of 2⁸ to SC 0,
    /// silently merging unrelated machine groups.
    #[test]
    fn rejects_group_fields_past_width() {
        let row = format!("{CSV_HEADER}\n0,{},0,0{}\n", 1u64 << 16, ",1.0".repeat(14));
        match read_csv(row.as_bytes()) {
            Err(CsvError::ValueOutOfRange { line, column, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(column, "sku");
            }
            other => panic!("expected ValueOutOfRange, got {other:?}"),
        }
        let row = format!("{CSV_HEADER}\n0,0,{},0{}\n", 1u64 << 8, ",1.0".repeat(14));
        match read_csv(row.as_bytes()) {
            Err(CsvError::ValueOutOfRange { line, column, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(column, "sc");
            }
            other => panic!("expected ValueOutOfRange, got {other:?}"),
        }
    }

    /// `hour` needs no narrowing (u64 end to end): overflow past
    /// `u64::MAX` is rejected by `parse` itself as a BadRow.
    #[test]
    fn rejects_hour_past_u64_as_bad_row() {
        let row = format!("{CSV_HEADER}\n0,0,0,18446744073709551616{}\n", ",1.0".repeat(14));
        match read_csv(row.as_bytes()) {
            Err(CsvError::BadRow { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected BadRow, got {other:?}"),
        }
    }

    #[test]
    fn skips_blank_lines() {
        let mut buf = Vec::new();
        write_csv(&sample_store(), &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        let back = read_csv(text.as_bytes()).unwrap();
        assert_eq!(back.len(), sample_store().len());
    }

    #[test]
    fn empty_store_is_header_only() {
        let mut buf = Vec::new();
        write_csv(&TelemetryStore::new(), &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.trim(), CSV_HEADER);
        assert!(read_csv(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn display_messages() {
        let e = CsvError::BadRow {
            line: 7,
            reason: "x".to_string(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = CsvError::SchemaMismatch {
            found: "bogus".to_string(),
        };
        assert!(e.to_string().contains("bogus"));
        let e = CsvError::NonFinite {
            line: 3,
            column: "power_draw_w",
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("power_draw_w"));
        let e = CsvError::ValueOutOfRange {
            line: 4,
            column: "machine",
            found: 1 << 32,
            max: u64::from(u32::MAX),
        };
        assert!(e.to_string().contains("line 4"));
        assert!(e.to_string().contains("machine"));
        assert!(e.to_string().contains("4294967296"));
    }

    #[test]
    fn column_names_match_header() {
        assert_eq!(COLUMN_NAMES.join(","), CSV_HEADER);
    }
}
