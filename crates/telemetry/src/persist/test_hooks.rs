//! One-shot failure-injection points for the crash-recovery suite.
//!
//! Real crash testing needs failures *between* the durability steps —
//! after WAL frames are written but before the fsync, or after new
//! segments land but before the manifest flip. These hooks let a test
//! arm exactly one such failure for one store directory; the
//! persistence layer consults them at the matching point and, when
//! armed, behaves as if the operation failed there (including any
//! partial on-disk effects a real failure would leave).
//!
//! Hooks are keyed by directory and self-disarm on first trigger, so
//! concurrently running tests (cargo runs them in one process) cannot
//! trip each other's injections: a hook armed for `/tmp/store-a` is
//! invisible to operations under `/tmp/store-b`. In production code
//! paths the checks are a single mutex lock against an armed-`None`
//! static.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

static FAIL_WAL_SYNC: Mutex<Option<PathBuf>> = Mutex::new(None);
static FAIL_WAL_APPEND: Mutex<Option<(PathBuf, u64)>> = Mutex::new(None);
static FAIL_MANIFEST_FLIP: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Locks ignoring poison: a panicking test must not wedge the others.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms a one-shot failure for the next WAL fsync under `dir`: the
/// frames are written to the file, the durability barrier "fails".
pub fn fail_next_wal_sync(dir: &Path) {
    *lock(&FAIL_WAL_SYNC) = Some(dir.to_path_buf());
}

/// Arms a one-shot mid-frame append failure for the next WAL append
/// under `dir`: only the first `bytes_written` bytes of the frame reach
/// the file before the "crash" — a torn frame, as a power cut leaves.
pub fn fail_wal_append_mid_frame(dir: &Path, bytes_written: u64) {
    *lock(&FAIL_WAL_APPEND) = Some((dir.to_path_buf(), bytes_written));
}

/// Arms a one-shot failure for the next manifest flip under `dir`: the
/// temp manifest (and any new segments/WAL) are on disk, but the rename
/// that would make them live never happens.
pub fn fail_next_manifest_flip(dir: &Path) {
    *lock(&FAIL_MANIFEST_FLIP) = Some(dir.to_path_buf());
}

/// Disarms every hook, armed or not. Tests call this in setup so an
/// earlier failed test cannot leak an injection into them.
pub fn reset() {
    *lock(&FAIL_WAL_SYNC) = None;
    *lock(&FAIL_WAL_APPEND) = None;
    *lock(&FAIL_MANIFEST_FLIP) = None;
}

/// True (once) if a WAL-fsync failure is armed for `path`'s store.
pub(crate) fn take_wal_sync_failure(path: &Path) -> bool {
    let mut g = lock(&FAIL_WAL_SYNC);
    if g.as_ref().is_some_and(|dir| path.starts_with(dir)) {
        *g = None;
        true
    } else {
        false
    }
}

/// The armed partial-write length (once) if a mid-frame append failure
/// is armed for `path`'s store.
pub(crate) fn take_wal_append_failure(path: &Path) -> Option<u64> {
    let mut g = lock(&FAIL_WAL_APPEND);
    if g.as_ref().is_some_and(|(dir, _)| path.starts_with(dir)) {
        g.take().map(|(_, bytes)| bytes)
    } else {
        None
    }
}

/// True (once) if a manifest-flip failure is armed for `dir`'s store.
pub(crate) fn take_manifest_flip_failure(dir: &Path) -> bool {
    let mut g = lock(&FAIL_MANIFEST_FLIP);
    if g.as_ref().is_some_and(|armed| dir.starts_with(armed)) {
        *g = None;
        true
    } else {
        false
    }
}
