//! CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32fast` convention) used
//! to checksum WAL frames and segment sections.
//!
//! Implemented as slicing-by-eight: eight 256-entry tables consumed 8
//! bytes per step, built once in a `const` context so the whole thing is
//! baked into rodata. At segment sizes (tens of MB) the difference
//! against the classic 1-byte table loop is the difference between a
//! checksum that hides inside file-read time and one that dominates
//! recovery.
//
// kea-lint: allow-file(index-in-library) — fixed-shape [8][256] tables
// indexed by u8-derived positions; every index is structurally < 256 and
// the table dimensions are compile-time constants.

/// The CRC-32 polynomial (reflected form).
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-eight lookup tables. `TABLES[0]` is the classic byte
/// table; `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero
/// bytes.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            k += 1;
        }
        tables[0][b] = crc;
        b += 1;
    }
    let mut t = 1usize;
    while t < 8 {
        let mut b = 0usize;
        while b < 256 {
            let prev = tables[t - 1][b];
            tables[t][b] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            b += 1;
        }
        t += 1;
    }
    tables
}

/// CRC-32 of `data` (standard init/final xor, matching zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        // The low half is folded into the running CRC, the high half is
        // independent; eight table lookups advance eight bytes.
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference single-byte implementation, for cross-checking the
    /// sliced loop.
    fn crc32_simple(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_equals_simple_on_all_alignments() {
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(131)) as u8).collect();
        for start in 0..9 {
            for end in [start, start + 1, start + 7, start + 8, start + 9, data.len()] {
                let slice = &data[start..end.max(start)];
                assert_eq!(crc32(slice), crc32_simple(slice), "at [{start}..{end}]");
            }
        }
    }
}
