//! Durable storage for [`TelemetryStore`]: WAL + segment spill + manifest.
//!
//! The on-disk layout mirrors the in-memory LSM shape. Each sealed run
//! lives in its own immutable *segment* file ([`segment`]); the
//! insertion-order delta tail lives in a *write-ahead log* ([`wal`]); a
//! tiny *manifest* ([`manifest`]) names the live file set — in run
//! order, with per-segment row counts and hour bounds — and is the only
//! file ever updated in place (atomically, via temp-file + rename).
//!
//! ## Durability contract
//!
//! `push`/`extend`/`seal` stay purely in-memory and infallible — exactly
//! as on a non-durable store. All I/O happens in
//! [`TelemetryStore::sync`]: if no run changed since the last sync,
//! records appended since then are framed into the WAL and fsynced (one
//! fsync per batch); if runs did change (a seal or compaction), only the
//! *dirty* runs are spilled as fresh segments — unchanged segments are
//! carried over by name, never rewritten — a fresh WAL is started
//! holding only the surviving delta tail, and the manifest is flipped
//! to the new file set. Per-sync bytes written are therefore bounded by
//! the new rows plus whatever the compaction ladder merged, not by the
//! total history. Records are guaranteed on stable storage only after
//! `sync` returns `Ok`; a failed `sync` may be retried and is
//! idempotent (the WAL tracks written-but-unsynced frames and never
//! re-appends them).
//!
//! ## Recovery sequence
//!
//! [`TelemetryStore::open`] reads the manifest and validates each named
//! segment's *header* (magic, version, checksum, row/size accounting)
//! without decoding bodies — segment bodies load lazily on first query,
//! so opening a month of history costs one small read per segment.
//! Manifests from the v1 era (no hour bounds) still open: their
//! segments are loaded eagerly to derive bounds and the next sync
//! rewrites the manifest as v2. The WAL is replayed into the delta tail
//! (truncating a torn tail from a mid-write crash), and orphan files
//! left by an interrupted rotation are swept. Every crash point
//! therefore lands in one of two states: the old file set or the new
//! one, both complete. Corruption quarantines the file and fails typed,
//! never panics.
//!
//! [`TelemetryStore`]: crate::TelemetryStore
//! [`TelemetryStore::sync`]: crate::TelemetryStore::sync
//! [`TelemetryStore::open`]: crate::TelemetryStore::open

pub(crate) mod codec;
pub(crate) mod crc;
pub(crate) mod manifest;
pub(crate) mod segment;
pub mod test_hooks;
pub(crate) mod wal;

use std::fmt;
use std::path::{Path, PathBuf};

use crate::record::MachineHourRecord;
use crate::store::ColumnIndex;
use manifest::{Manifest, SegmentEntry, MANIFEST_NAME};

/// Errors from the persistence layer. Recovery never panics: every
/// failure mode — I/O, torn writes, checksum mismatches, doctored
/// manifests — surfaces as one of these.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure, tagged with the operation and
    /// the path it touched.
    Io {
        /// What the store was doing (e.g. `"fsync wal"`).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A file failed validation: bad magic, checksum mismatch, torn
    /// structure, or index invariants that do not hold. Corrupt
    /// segments are quarantined (renamed to `*.quarantine`) before
    /// this is returned.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Human-readable diagnosis (includes the quarantine path when
        /// the file was moved aside).
        reason: String,
    },
    /// The directory exists and is non-trivial but has no `MANIFEST` —
    /// distinguishable from a fresh (empty) directory, which is
    /// initialized silently. Quarantined files count as evidence of a
    /// prior store.
    MissingManifest {
        /// The store directory.
        dir: PathBuf,
    },
    /// [`crate::TelemetryStore::sync`] was called on an in-memory
    /// store that was never opened from a directory.
    NotDurable,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "{op} failed for {}: {source}", path.display())
            }
            PersistError::Corrupt { path, reason } => {
                write!(f, "{} is corrupt: {reason}", path.display())
            }
            PersistError::MissingManifest { dir } => write!(
                f,
                "{} contains store files but no MANIFEST; refusing to guess the live set",
                dir.display()
            ),
            PersistError::NotDurable => {
                write!(f, "sync() on an in-memory store; use TelemetryStore::open(dir) for durability")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Adapter for `map_err`: tags an `io::Error` with operation + path.
pub(crate) fn io_err(op: &'static str, path: &Path) -> impl FnOnce(std::io::Error) -> PersistError {
    let path = path.to_path_buf();
    move |source| PersistError::Io { op, path, source }
}

/// Fsyncs a directory so renames/creations inside it are durable.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), PersistError> {
    let d = std::fs::File::open(dir).map_err(io_err("open dir for fsync", dir))?;
    d.sync_all().map_err(io_err("fsync dir", dir))
}

/// What one [`crate::TelemetryStore::sync`] wrote, for
/// write-amplification accounting: a rotation that spills two fresh
/// segments reports their bytes here; an unchanged-history sync reports
/// only the WAL frame it appended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Whether this sync rotated (rewrote the manifest and WAL) rather
    /// than appending to the live WAL.
    pub rotated: bool,
    /// Segment files written by this sync.
    pub segments_written: usize,
    /// Bytes of segment data written by this sync.
    pub segment_bytes: u64,
    /// Records framed into a WAL by this sync.
    pub wal_records: usize,
    /// Bytes of WAL data written by this sync.
    pub wal_bytes: u64,
}

/// One sealed run as the store presents it to [`Backing::sync`]:
/// either already on disk under a known segment name, or dirty
/// (new or re-merged) and needing a spill.
#[derive(Debug)]
pub(crate) enum RunRef<'a> {
    /// Already persisted; carried into the next manifest by name
    /// without rewriting a byte.
    Clean {
        /// Segment file name.
        name: &'a str,
        /// Row count recorded in the manifest.
        rows: u64,
        /// Inclusive hour bounds recorded in the manifest.
        bounds: (u64, u64),
    },
    /// In memory only (fresh seal or compaction output); spilled as a
    /// new segment on the next rotation.
    Dirty {
        /// The run's index, from which bounds and rows are derived.
        index: &'a ColumnIndex,
    },
}

/// One sealed run recovered at open: its manifest identity plus, for
/// v1-era entries that had to be read eagerly to learn their bounds,
/// the decoded index.
#[derive(Debug)]
pub(crate) struct RecoveredRun {
    /// Segment file name.
    pub name: String,
    /// Row count from the manifest (header-verified).
    pub rows: usize,
    /// Inclusive hour bounds (from the manifest, or derived from an
    /// eagerly-loaded v1 segment).
    pub bounds: (u64, u64),
    /// Decoded index, present only when the segment was loaded eagerly.
    pub index: Option<ColumnIndex>,
}

/// Result of opening a store directory: the backing plus the recovered
/// in-memory state.
#[derive(Debug)]
pub(crate) struct Recovered {
    /// The attached backing, ready for appends.
    pub backing: Backing,
    /// The sealed runs, oldest first.
    pub runs: Vec<RecoveredRun>,
    /// The delta tail replayed from the WAL, in append order.
    pub delta: Vec<MachineHourRecord>,
}

/// The attachment of a [`crate::TelemetryStore`] to its directory: open
/// WAL handle, live file set, and high-water marks tracking what is
/// already durable.
#[derive(Debug)]
pub(crate) struct Backing {
    /// Store directory.
    dir: PathBuf,
    /// Open WAL, positioned at its end.
    wal: wal::Wal,
    /// Live file set as last committed to the manifest.
    live: Manifest,
    /// Tail records appended to the live WAL (a prefix length of the
    /// store's delta tail). Advanced only after a successful append.
    wal_written: usize,
    /// Tail records known durable (fsynced). Lags `wal_written` after a
    /// failed fsync; a retried sync then skips the re-append and only
    /// repeats the fsync — the fix for the duplicate-replay bug.
    wal_synced: usize,
    /// Next generation number for naming new segment/WAL files.
    next_gen: u64,
    /// Set when the manifest parsed as v1; the next sync rotates even
    /// if nothing changed, upgrading the directory to v2.
    needs_upgrade: bool,
}

/// Parses the generation number out of `seg-NNNNNN.kseg` /
/// `wal-NNNNNN.wal` names; `None` for anything else.
fn gen_of(name: &str) -> Option<u64> {
    let digits = name
        .strip_prefix("seg-")
        .and_then(|r| r.strip_suffix(".kseg"))
        .or_else(|| name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".wal")))?;
    digits.parse().ok()
}

/// True for names the store owns and may sweep when orphaned.
fn sweepable(name: &str) -> bool {
    gen_of(name).is_some() || name.ends_with(".tmp")
}

/// Opens (or initializes) a store directory and recovers its contents.
pub(crate) fn recover(dir: &Path) -> Result<Recovered, PersistError> {
    std::fs::create_dir_all(dir).map_err(io_err("create store dir", dir))?;

    let (live, needs_upgrade_hdr) = match manifest::read_manifest(dir) {
        Ok(m) => {
            let v1 = m.segments.iter().any(|s| s.bounds.is_none());
            (m, v1)
        }
        Err(PersistError::MissingManifest { .. }) => {
            // Fresh directory — but refuse to silently reinitialize on
            // top of evidence of a real store whose manifest went
            // missing: generation-named files, or quarantined files
            // left by a prior corruption event.
            let mut entries = std::fs::read_dir(dir).map_err(io_err("list store dir", dir))?;
            let has_store_files = entries.try_fold(false, |acc, e| {
                let e = e.map_err(io_err("list store dir", dir))?;
                let name = e.file_name();
                let owned = name
                    .to_str()
                    .is_some_and(|n| gen_of(n).is_some() || n.ends_with(".quarantine"));
                Ok::<bool, PersistError>(acc || owned)
            })?;
            if has_store_files {
                return Err(PersistError::MissingManifest { dir: dir.to_path_buf() });
            }
            let wal_name = format!("wal-{:06}.wal", 1);
            wal::Wal::create(&dir.join(&wal_name), &[])?;
            fsync_dir(dir)?;
            let m = Manifest { segments: Vec::new(), wal: wal_name };
            manifest::write_manifest(dir, &m)?;
            (m, false)
        }
        Err(e) => return Err(e),
    };

    // Validate the live segments, oldest first. v2 entries carry their
    // hour bounds in the manifest, so only the header is checked here
    // and the body loads lazily on first query; v1 entries are loaded
    // in full to derive bounds.
    let mut runs = Vec::with_capacity(live.segments.len());
    for seg in &live.segments {
        match seg.bounds {
            Some(bounds) => {
                segment::read_header(dir, &seg.name, seg.rows)?;
                let rows = usize::try_from(seg.rows).map_err(|_| PersistError::Corrupt {
                    path: dir.join(&seg.name),
                    reason: "row count overflows usize".to_string(),
                })?;
                if rows > 0 {
                    runs.push(RecoveredRun { name: seg.name.clone(), rows, bounds, index: None });
                }
            }
            None => {
                let index = segment::load_segment(dir, &seg.name, seg.rows, None)?;
                if let (Some(&lo), Some(&hi)) = (index.hours.first(), index.hours.last()) {
                    runs.push(RecoveredRun {
                        name: seg.name.clone(),
                        rows: index.sorted.len(),
                        bounds: (lo, hi),
                        index: Some(index),
                    });
                }
            }
        }
    }

    // Replay the WAL; a torn tail is truncated inside `Wal::open`.
    let replay = wal::Wal::open(&dir.join(&live.wal))?;
    let delta = replay.records;

    // Sweep orphans from interrupted rotations: generation-named files
    // and temp files the manifest does not own. Quarantined files and
    // foreign names are left alone.
    let keep = |name: &str| {
        name == MANIFEST_NAME
            || name == live.wal
            || live.segments.iter().any(|s| s.name == name)
    };
    let entries = std::fs::read_dir(dir).map_err(io_err("list store dir", dir))?;
    for e in entries {
        let e = e.map_err(io_err("list store dir", dir))?;
        if let Some(name) = e.file_name().to_str() {
            if sweepable(name) && !keep(name) {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }

    let next_gen = 1 + live
        .segments
        .iter()
        .filter_map(|s| gen_of(&s.name))
        .chain(gen_of(&live.wal))
        .max()
        .unwrap_or(0);

    let tail_len = delta.len();
    let backing = Backing {
        dir: dir.to_path_buf(),
        wal: replay.wal,
        live,
        wal_written: tail_len,
        wal_synced: tail_len,
        next_gen,
        needs_upgrade: needs_upgrade_hdr,
    };
    Ok(Recovered { backing, runs, delta })
}

impl Backing {
    /// Directory this backing writes into.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Makes the store durable: `runs` are the sealed runs oldest
    /// first, `tail` the insertion-order delta. If every run is clean
    /// and matches the live manifest, this appends the new tail suffix
    /// to the WAL; otherwise it rotates — writing only the dirty runs
    /// as fresh segments. Returns what was written plus, aligned with
    /// `runs`, the names newly assigned to dirty runs.
    pub(crate) fn sync(
        &mut self,
        runs: &[RunRef<'_>],
        tail: &[MachineHourRecord],
    ) -> Result<(SyncStats, Vec<Option<String>>), PersistError> {
        let clean_matches = runs.len() == self.live.segments.len()
            && runs.iter().zip(&self.live.segments).all(|(r, s)| match r {
                RunRef::Clean { name, .. } => *name == s.name,
                RunRef::Dirty { .. } => false,
            });
        if clean_matches && !self.needs_upgrade {
            let stats = self.append_tail(tail)?;
            Ok((stats, vec![None; runs.len()]))
        } else {
            self.rotate(runs, tail)
        }
    }

    /// Fast path: frame everything past the WAL high-water mark and
    /// fsync once. Idempotent under retry: records already appended by
    /// a previous attempt whose fsync failed are not re-appended (only
    /// the fsync repeats), and a batch torn mid-append is erased by the
    /// WAL before the retry writes it again.
    fn append_tail(&mut self, tail: &[MachineHourRecord]) -> Result<SyncStats, PersistError> {
        let mut stats = SyncStats::default();
        let new = tail.get(self.wal_written..).unwrap_or_default();
        if new.is_empty() && self.wal_synced == self.wal_written {
            return Ok(stats);
        }
        if !new.is_empty() {
            let before = self.wal.byte_len();
            self.wal.append(new)?;
            self.wal_written = tail.len();
            stats.wal_records = new.len();
            stats.wal_bytes = self.wal.byte_len().saturating_sub(before);
        }
        self.wal.sync()?;
        self.wal_synced = self.wal_written;
        Ok(stats)
    }

    /// Rotation: the run set changed (seal, compaction, or a v1
    /// upgrade), so spill each dirty run as a segment, start a fresh
    /// WAL holding only the current delta tail, flip the manifest, and
    /// drop the superseded files. Clean runs are carried over by name —
    /// unchanged history is never rewritten.
    ///
    /// Ordering is crash-safe at every point: the old manifest (and the
    /// files it names) stays live until the new manifest's rename
    /// lands, and the sweep of superseded files only happens after.
    /// Nothing in `self` mutates until the flip succeeds, so a failed
    /// rotation can simply be retried.
    fn rotate(
        &mut self,
        runs: &[RunRef<'_>],
        tail: &[MachineHourRecord],
    ) -> Result<(SyncStats, Vec<Option<String>>), PersistError> {
        let mut stats = SyncStats { rotated: true, ..SyncStats::default() };
        let mut segments = Vec::with_capacity(runs.len());
        let mut assigned = vec![None; runs.len()];
        let mut next_gen = self.next_gen;
        for (slot, r) in assigned.iter_mut().zip(runs) {
            match r {
                RunRef::Clean { name, rows, bounds } => segments.push(SegmentEntry {
                    name: (*name).to_string(),
                    rows: *rows,
                    bounds: Some(*bounds),
                }),
                RunRef::Dirty { index } => {
                    let (Some(&lo), Some(&hi)) = (index.hours.first(), index.hours.last())
                    else {
                        continue; // An empty run has nothing to persist.
                    };
                    let name = format!("seg-{next_gen:06}.kseg");
                    next_gen += 1;
                    stats.segment_bytes += segment::write_segment(&self.dir, &name, index)?;
                    stats.segments_written += 1;
                    segments.push(SegmentEntry {
                        name: name.clone(),
                        rows: u64::try_from(index.sorted.len()).unwrap_or(u64::MAX),
                        bounds: Some((lo, hi)),
                    });
                    *slot = Some(name);
                }
            }
        }

        let wal_name = format!("wal-{next_gen:06}.wal");
        next_gen += 1;
        let new_wal = wal::Wal::create(&self.dir.join(&wal_name), tail)?;
        stats.wal_records = tail.len();
        stats.wal_bytes = new_wal.byte_len();
        fsync_dir(&self.dir)?;

        let new_live = Manifest { segments, wal: wal_name };
        manifest::write_manifest(&self.dir, &new_live)?;

        // The flip landed: the new file set is live. The old set is now
        // superseded; best-effort removal (a crash here just leaves
        // orphans for the next open's sweep).
        for s in &self.live.segments {
            if !new_live.segments.iter().any(|n| n.name == s.name) {
                let _ = std::fs::remove_file(self.dir.join(&s.name));
            }
        }
        if self.live.wal != new_live.wal {
            let _ = std::fs::remove_file(self.dir.join(&self.live.wal));
        }

        self.wal = new_wal;
        self.live = new_live;
        self.wal_written = tail.len();
        self.wal_synced = tail.len();
        self.next_gen = next_gen;
        self.needs_upgrade = false;
        Ok((stats, assigned))
    }
}
