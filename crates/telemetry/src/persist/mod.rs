//! Durable storage for [`TelemetryStore`]: WAL + segment spill + manifest.
//!
//! The on-disk layout mirrors the in-memory LSM shape. The sealed run
//! lives in immutable *segment* files ([`segment`]); the insertion-order
//! delta tail lives in a *write-ahead log* ([`wal`]); a tiny *manifest*
//! ([`manifest`]) names the live file set and is the only file ever
//! updated in place (atomically, via temp-file + rename).
//!
//! ## Durability contract
//!
//! `push`/`extend`/`seal` stay purely in-memory and infallible — exactly
//! as on a non-durable store. All I/O happens in
//! [`TelemetryStore::sync`]: records appended since the last sync are
//! framed into the WAL and fsynced (one fsync per batch); if the store
//! compacted since the last sync, the new run is spilled as a fresh
//! segment, a fresh WAL is started holding only the surviving delta
//! tail, and the manifest is flipped to the new file set. Records are
//! guaranteed on stable storage only after `sync` returns `Ok`.
//!
//! ## Recovery sequence
//!
//! [`TelemetryStore::open`] reads the manifest, loads and merges the
//! segments it names (each checksum-verified and structurally
//! validated; corruption quarantines the file and fails typed, never
//! panics), replays the WAL into the delta tail (truncating a torn
//! tail from a mid-write crash), and sweeps orphan files left by an
//! interrupted rotation. Every crash point therefore lands in one of
//! two states: the old file set or the new one, both complete.
//!
//! [`TelemetryStore`]: crate::TelemetryStore
//! [`TelemetryStore::sync`]: crate::TelemetryStore::sync
//! [`TelemetryStore::open`]: crate::TelemetryStore::open

pub(crate) mod codec;
pub(crate) mod crc;
pub(crate) mod manifest;
pub(crate) mod segment;
pub(crate) mod wal;

use std::fmt;
use std::path::{Path, PathBuf};

use crate::record::MachineHourRecord;
use crate::store::ColumnIndex;
use manifest::{Manifest, SegmentEntry, MANIFEST_NAME};

/// Errors from the persistence layer. Recovery never panics: every
/// failure mode — I/O, torn writes, checksum mismatches, doctored
/// manifests — surfaces as one of these.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure, tagged with the operation and
    /// the path it touched.
    Io {
        /// What the store was doing (e.g. `"fsync wal"`).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A file failed validation: bad magic, checksum mismatch, torn
    /// structure, or index invariants that do not hold. Corrupt
    /// segments are quarantined (renamed to `*.quarantine`) before
    /// this is returned.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Human-readable diagnosis (includes the quarantine path when
        /// the file was moved aside).
        reason: String,
    },
    /// The directory exists and is non-trivial but has no `MANIFEST` —
    /// distinguishable from a fresh (empty) directory, which is
    /// initialized silently.
    MissingManifest {
        /// The store directory.
        dir: PathBuf,
    },
    /// [`crate::TelemetryStore::sync`] was called on an in-memory
    /// store that was never opened from a directory.
    NotDurable,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "{op} failed for {}: {source}", path.display())
            }
            PersistError::Corrupt { path, reason } => {
                write!(f, "{} is corrupt: {reason}", path.display())
            }
            PersistError::MissingManifest { dir } => write!(
                f,
                "{} contains store files but no MANIFEST; refusing to guess the live set",
                dir.display()
            ),
            PersistError::NotDurable => {
                write!(f, "sync() on an in-memory store; use TelemetryStore::open(dir) for durability")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Adapter for `map_err`: tags an `io::Error` with operation + path.
pub(crate) fn io_err(op: &'static str, path: &Path) -> impl FnOnce(std::io::Error) -> PersistError {
    let path = path.to_path_buf();
    move |source| PersistError::Io { op, path, source }
}

/// Fsyncs a directory so renames/creations inside it are durable.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), PersistError> {
    let d = std::fs::File::open(dir).map_err(io_err("open dir for fsync", dir))?;
    d.sync_all().map_err(io_err("fsync dir", dir))
}

/// The attachment of a [`crate::TelemetryStore`] to its directory: open
/// WAL handle, live file set, and high-water marks tracking what is
/// already durable.
#[derive(Debug)]
pub(crate) struct Backing {
    /// Store directory.
    dir: PathBuf,
    /// Open WAL, positioned at its end.
    wal: wal::Wal,
    /// Live file set as last committed to the manifest.
    live: Manifest,
    /// Records covered by segments — the store's `run_len` at the last
    /// rotation. A `run_len` above this means a compaction happened
    /// since and the next sync must rotate.
    seg_covered: usize,
    /// Absolute record count already framed into the live WAL
    /// (`seg_covered` + WAL records).
    wal_appended: usize,
    /// Next generation number for naming new segment/WAL files.
    next_gen: u64,
}

/// Result of opening a store directory: the backing plus the recovered
/// in-memory state.
#[derive(Debug)]
pub(crate) struct Recovered {
    /// The attached backing, ready for appends.
    pub backing: Backing,
    /// The sealed run merged from all live segments.
    pub run: ColumnIndex,
    /// The delta tail replayed from the WAL, in append order.
    pub delta: Vec<MachineHourRecord>,
}

/// Parses the generation number out of `seg-NNNNNN.kseg` /
/// `wal-NNNNNN.wal` names; `None` for anything else.
fn gen_of(name: &str) -> Option<u64> {
    let digits = name
        .strip_prefix("seg-")
        .and_then(|r| r.strip_suffix(".kseg"))
        .or_else(|| name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".wal")))?;
    digits.parse().ok()
}

/// True for names the store owns and may sweep when orphaned.
fn sweepable(name: &str) -> bool {
    gen_of(name).is_some() || name.ends_with(".tmp")
}

/// Opens (or initializes) a store directory and recovers its contents.
pub(crate) fn recover(dir: &Path) -> Result<Recovered, PersistError> {
    std::fs::create_dir_all(dir).map_err(io_err("create store dir", dir))?;

    let live = match manifest::read_manifest(dir) {
        Ok(m) => m,
        Err(PersistError::MissingManifest { .. }) => {
            // Fresh directory — but refuse to silently reinitialize on
            // top of real store files whose manifest went missing.
            let mut entries = std::fs::read_dir(dir).map_err(io_err("list store dir", dir))?;
            let has_store_files = entries.try_fold(false, |acc, e| {
                let e = e.map_err(io_err("list store dir", dir))?;
                let name = e.file_name();
                let owned = name.to_str().is_some_and(|n| gen_of(n).is_some());
                Ok::<bool, PersistError>(acc || owned)
            })?;
            if has_store_files {
                return Err(PersistError::MissingManifest { dir: dir.to_path_buf() });
            }
            let wal_name = format!("wal-{:06}.wal", 1);
            wal::Wal::create(&dir.join(&wal_name), &[])?;
            fsync_dir(dir)?;
            let m = Manifest { segments: Vec::new(), wal: wal_name };
            manifest::write_manifest(dir, &m)?;
            m
        }
        Err(e) => return Err(e),
    };

    // Load and merge the live segments, oldest first.
    let mut run: Option<ColumnIndex> = None;
    for seg in &live.segments {
        let loaded = segment::load_segment(dir, &seg.name, seg.rows)?;
        run = Some(match run {
            None => loaded,
            Some(acc) => ColumnIndex::merge(&acc, &loaded),
        });
    }
    let run = run.unwrap_or_else(|| ColumnIndex::build(&[]));
    let seg_covered = run.sorted.len();

    // Replay the WAL; a torn tail is truncated inside `Wal::open`.
    let replay = wal::Wal::open(&dir.join(&live.wal))?;
    let delta = replay.records;
    let wal_appended = seg_covered + delta.len();

    // Sweep orphans from interrupted rotations: generation-named files
    // and temp files the manifest does not own. Quarantined files and
    // foreign names are left alone.
    let keep = |name: &str| {
        name == MANIFEST_NAME
            || name == live.wal
            || live.segments.iter().any(|s| s.name == name)
    };
    let entries = std::fs::read_dir(dir).map_err(io_err("list store dir", dir))?;
    for e in entries {
        let e = e.map_err(io_err("list store dir", dir))?;
        if let Some(name) = e.file_name().to_str() {
            if sweepable(name) && !keep(name) {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }

    let next_gen = 1 + live
        .segments
        .iter()
        .filter_map(|s| gen_of(&s.name))
        .chain(gen_of(&live.wal))
        .max()
        .unwrap_or(0);

    let backing = Backing {
        dir: dir.to_path_buf(),
        wal: replay.wal,
        live,
        seg_covered,
        wal_appended,
        next_gen,
    };
    Ok(Recovered { backing, run, delta })
}

impl Backing {
    /// Directory this backing writes into.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Makes the store durable up to `records.len()`. `run_len` and
    /// `run` describe the store's current sealed run; `records` is the
    /// full insertion-order record vector.
    pub(crate) fn sync(
        &mut self,
        records: &[MachineHourRecord],
        run_len: usize,
        run: &ColumnIndex,
    ) -> Result<(), PersistError> {
        if run_len != self.seg_covered {
            self.rotate(records, run_len, run)
        } else {
            self.append_tail(records)
        }
    }

    /// Fast path: frame everything past the WAL high-water mark and
    /// fsync once.
    fn append_tail(&mut self, records: &[MachineHourRecord]) -> Result<(), PersistError> {
        let new = records.get(self.wal_appended..).unwrap_or_default();
        if new.is_empty() {
            return Ok(());
        }
        self.wal.append(new)?;
        self.wal.sync()?;
        self.wal_appended = records.len();
        Ok(())
    }

    /// Rotation: the in-memory run moved (compaction or seal), so spill
    /// it as a segment, start a fresh WAL holding only the current
    /// delta tail, flip the manifest, and drop the superseded files.
    ///
    /// Ordering is crash-safe at every point: the old manifest (and the
    /// files it names) stays live until the new manifest's rename
    /// lands, and the sweep of superseded files only happens after.
    fn rotate(
        &mut self,
        records: &[MachineHourRecord],
        run_len: usize,
        run: &ColumnIndex,
    ) -> Result<(), PersistError> {
        let delta = records.get(run_len..).unwrap_or_default();

        let mut segments = Vec::new();
        if run_len > 0 {
            let seg_name = format!("seg-{:06}.kseg", self.next_gen);
            self.next_gen += 1;
            segment::write_segment(&self.dir, &seg_name, run)?;
            segments.push(SegmentEntry { name: seg_name, rows: run_len as u64 });
        }

        let wal_name = format!("wal-{:06}.wal", self.next_gen);
        self.next_gen += 1;
        let new_wal = wal::Wal::create(&self.dir.join(&wal_name), delta)?;
        fsync_dir(&self.dir)?;

        let new_live = Manifest { segments, wal: wal_name };
        manifest::write_manifest(&self.dir, &new_live)?;

        // The old file set is now superseded; best-effort removal (a
        // crash here just leaves orphans for the next open's sweep).
        for s in &self.live.segments {
            if !new_live.segments.iter().any(|n| n.name == s.name) {
                let _ = std::fs::remove_file(self.dir.join(&s.name));
            }
        }
        if self.live.wal != new_live.wal {
            let _ = std::fs::remove_file(self.dir.join(&self.live.wal));
        }

        self.wal = new_wal;
        self.live = new_live;
        self.seg_covered = run_len;
        self.wal_appended = records.len();
        Ok(())
    }
}
