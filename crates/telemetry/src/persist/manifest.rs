//! The manifest: the single source of truth for which files are live.
//!
//! A store directory's `MANIFEST` names the live segment set (in run
//! order, oldest first) and the live WAL. It is tiny and human-readable.
//! The current format is **v2**, which records each segment's inclusive
//! hour bounds so windowed queries can prune segments without opening
//! them:
//!
//! ```text
//! kea-telemetry-manifest v2
//! segment seg-000001.kseg rows 86016 hours 0 335
//! segment seg-000003.kseg rows 6144 hours 336 359
//! wal wal-000004.wal
//! ```
//!
//! **v1** manifests (written before hour bounds existed) parse under the
//! same reader; their segment entries come back with `bounds: None`, the
//! loader derives the bounds by reading the segment eagerly, and the
//! next manifest flip rewrites the file as v2. Writes always emit v2.
//!
//! Every update writes `MANIFEST.tmp`, fsyncs it, renames over
//! `MANIFEST`, and fsyncs the directory — so the manifest flips
//! atomically between two valid states and a crash at any byte leaves
//! either the old or the new file set live. Files not named by the
//! manifest are orphans from an interrupted rotation and are swept on
//! open (quarantined files excepted).

use std::path::{Path, PathBuf};

use super::{fsync_dir, io_err, test_hooks, PersistError};

/// File name of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// First line of every manifest this build writes.
const MANIFEST_HEADER_V2: &str = "kea-telemetry-manifest v2";

/// First line of manifests written before per-segment hour bounds;
/// still accepted by the reader.
const MANIFEST_HEADER_V1: &str = "kea-telemetry-manifest v1";

/// One live segment: file name, the row count the loader must find, and
/// (for v2 entries) the inclusive `[min_hour, max_hour]` the segment
/// covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment file name (no directory components).
    pub name: String,
    /// Rows recorded at write time; cross-checked against the header.
    pub rows: u64,
    /// Inclusive hour bounds recorded at write time; `None` only for
    /// entries parsed from a v1 manifest, which are loaded eagerly to
    /// derive them.
    pub bounds: Option<(u64, u64)>,
}

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Live segments in run order (oldest first).
    pub segments: Vec<SegmentEntry>,
    /// Live WAL file name.
    pub wal: String,
}

/// A file name is acceptable only if it is a bare name — no path
/// separators, no `..` — so a doctored manifest cannot reach outside
/// the store directory.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.contains('/')
        && !name.contains('\\')
        && name != "."
        && name != ".."
}

impl Manifest {
    /// Serializes to the on-disk text form (always v2). Entries that
    /// still lack bounds (possible only if a v1 entry was somehow never
    /// upgraded) are rendered without an `hours` clause, which the v2
    /// parser also accepts.
    fn render(&self) -> String {
        let mut out = String::from(MANIFEST_HEADER_V2);
        out.push('\n');
        for s in &self.segments {
            match s.bounds {
                Some((lo, hi)) => {
                    out.push_str(&format!("segment {} rows {} hours {lo} {hi}\n", s.name, s.rows))
                }
                None => out.push_str(&format!("segment {} rows {}\n", s.name, s.rows)),
            }
        }
        out.push_str(&format!("wal {}\n", self.wal));
        out
    }

    /// Parses the on-disk text form; any malformed line is corruption.
    fn parse(text: &str, path: &Path) -> Result<Manifest, PersistError> {
        let corrupt = |reason: String| PersistError::Corrupt { path: path.to_path_buf(), reason };
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_HEADER_V1) | Some(MANIFEST_HEADER_V2) => {}
            _ => return Err(corrupt("missing or unsupported manifest header line".to_string())),
        }
        let mut segments = Vec::new();
        let mut wal = None;
        for (no, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(' ').collect();
            match fields.as_slice() {
                ["segment", name, "rows", rows] => {
                    if !valid_name(name) {
                        return Err(corrupt(format!("bad segment name on line {}", no + 2)));
                    }
                    let rows: u64 = rows
                        .parse()
                        .map_err(|_| corrupt(format!("bad row count on line {}", no + 2)))?;
                    segments.push(SegmentEntry { name: name.to_string(), rows, bounds: None });
                }
                ["segment", name, "rows", rows, "hours", lo, hi] => {
                    if !valid_name(name) {
                        return Err(corrupt(format!("bad segment name on line {}", no + 2)));
                    }
                    let rows: u64 = rows
                        .parse()
                        .map_err(|_| corrupt(format!("bad row count on line {}", no + 2)))?;
                    let lo: u64 = lo
                        .parse()
                        .map_err(|_| corrupt(format!("bad hour bound on line {}", no + 2)))?;
                    let hi: u64 = hi
                        .parse()
                        .map_err(|_| corrupt(format!("bad hour bound on line {}", no + 2)))?;
                    if lo > hi {
                        return Err(corrupt(format!("inverted hour bounds on line {}", no + 2)));
                    }
                    segments.push(SegmentEntry {
                        name: name.to_string(),
                        rows,
                        bounds: Some((lo, hi)),
                    });
                }
                ["wal", name] => {
                    if !valid_name(name) {
                        return Err(corrupt(format!("bad wal name on line {}", no + 2)));
                    }
                    if wal.replace(name.to_string()).is_some() {
                        return Err(corrupt("manifest names two WALs".to_string()));
                    }
                }
                _ => {
                    return Err(corrupt(format!("unrecognized manifest line {}", no + 2)));
                }
            }
        }
        let wal = wal.ok_or_else(|| corrupt("manifest names no WAL".to_string()))?;
        Ok(Manifest { segments, wal })
    }
}

/// Reads and parses `dir/MANIFEST`. A missing file is the dedicated
/// [`PersistError::MissingManifest`] so callers can distinguish "fresh
/// directory" from "directory with a deleted manifest".
pub fn read_manifest(dir: &Path) -> Result<Manifest, PersistError> {
    let path = dir.join(MANIFEST_NAME);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(PersistError::MissingManifest { dir: dir.to_path_buf() })
        }
        Err(e) => return Err(io_err("read manifest", &path)(e)),
    };
    let text = String::from_utf8(bytes).map_err(|_| PersistError::Corrupt {
        path: path.clone(),
        reason: "manifest is not valid UTF-8".to_string(),
    })?;
    Manifest::parse(&text, &path)
}

/// Atomically installs `manifest` as `dir/MANIFEST`: write temp, fsync,
/// rename, fsync directory.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<(), PersistError> {
    let tmp: PathBuf = dir.join(format!("{MANIFEST_NAME}.tmp"));
    let path = dir.join(MANIFEST_NAME);
    std::fs::write(&tmp, manifest.render()).map_err(io_err("write manifest temp", &tmp))?;
    let f = std::fs::File::open(&tmp).map_err(io_err("reopen manifest temp", &tmp))?;
    f.sync_all().map_err(io_err("fsync manifest temp", &tmp))?;
    drop(f);
    // Crash-injection point for the crash suite: the new segments and
    // the temp manifest are on disk, but the flip never happens — the
    // old file set must stay live and the orphans must be swept.
    if test_hooks::take_manifest_flip_failure(dir) {
        return Err(PersistError::Io {
            op: "rename manifest (injected crash)",
            path,
            source: std::io::Error::other("injected manifest-flip failure"),
        });
    }
    std::fs::rename(&tmp, &path).map_err(io_err("rename manifest", &path))?;
    fsync_dir(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("kea-manifest-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let m = Manifest {
            segments: vec![
                SegmentEntry { name: "seg-000001.kseg".into(), rows: 86_016, bounds: Some((0, 335)) },
                SegmentEntry { name: "seg-000002.kseg".into(), rows: 12, bounds: Some((336, 340)) },
            ],
            wal: "wal-000003.wal".into(),
        };
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), m);
        assert!(!dir.join("MANIFEST.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_manifest_parses_with_unknown_bounds() {
        let dir = tmpdir("v1");
        std::fs::write(
            dir.join(MANIFEST_NAME),
            "kea-telemetry-manifest v1\nsegment seg-000001.kseg rows 77\nwal wal-000002.wal\n",
        )
        .unwrap();
        let m = read_manifest(&dir).unwrap();
        assert_eq!(m.segments.len(), 1);
        assert_eq!(m.segments[0].rows, 77);
        assert_eq!(m.segments[0].bounds, None);
        assert_eq!(m.wal, "wal-000002.wal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_typed() {
        let dir = tmpdir("missing");
        assert!(matches!(
            read_manifest(&dir).unwrap_err(),
            PersistError::MissingManifest { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_lines_are_corrupt() {
        let dir = tmpdir("malformed");
        let cases = [
            "",
            "wrong header\nwal a.wal\n",
            "kea-telemetry-manifest v1\n",                       // no wal
            "kea-telemetry-manifest v2\n",                       // no wal
            "kea-telemetry-manifest v1\nwal a\nwal b\n",        // two wals
            "kea-telemetry-manifest v1\nsegment x rows z\nwal a\n",
            "kea-telemetry-manifest v1\nsegment ../x rows 3\nwal a\n",
            "kea-telemetry-manifest v2\nsegment ../x rows 3 hours 0 4\nwal a\n",
            "kea-telemetry-manifest v2\nsegment x rows 3 hours z 4\nwal a\n",
            "kea-telemetry-manifest v2\nsegment x rows 3 hours 9 4\nwal a\n", // inverted
            "kea-telemetry-manifest v2\nsegment x rows 3 hours 1\nwal a\n",   // truncated
            "kea-telemetry-manifest v1\nwal ../../etc/passwd\n",
            "kea-telemetry-manifest v1\nmystery line\nwal a\n",
        ];
        for (i, text) in cases.iter().enumerate() {
            std::fs::write(dir.join(MANIFEST_NAME), text).unwrap();
            let err = read_manifest(&dir).unwrap_err();
            assert!(matches!(err, PersistError::Corrupt { .. }), "case {i}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
