//! Fixed-width binary encoding of [`MachineHourRecord`] shared by the
//! WAL and segment formats.
//!
//! A record is 127 little-endian bytes: `machine: u32`, `sku: u16`,
//! `sc: u8`, `hour: u64`, then the 14 metric columns as `f64` in
//! [`MetricValues`] field-declaration order (the same order as
//! [`crate::Metric::ALL`]). The layout is versioned by the containing
//! file's magic, not per record, so decoding never guesses widths.

use crate::record::{GroupKey, MachineHourRecord, MachineId, MetricValues, ScId, SkuId};

/// Encoded size of one record in bytes.
pub const RECORD_BYTES: usize = 127;

/// Appends the 127-byte encoding of `r` to `out`.
pub fn encode_record(r: &MachineHourRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.machine.0.to_le_bytes());
    out.extend_from_slice(&r.group.sku.0.to_le_bytes());
    out.push(r.group.sc.0);
    out.extend_from_slice(&r.hour.to_le_bytes());
    let m = &r.metrics;
    for v in [
        m.total_data_read_gb,
        m.tasks_finished,
        m.task_exec_time_s,
        m.cpu_time_s,
        m.cpu_utilization,
        m.avg_running_containers,
        m.avg_task_latency_s,
        m.queued_containers,
        m.queue_latency_p99_ms,
        m.power_draw_w,
        m.ssd_used_gb,
        m.ram_used_gb,
        m.cores_used,
        m.network_used_gbps,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Reads a `u16` at `at`; `None` if out of bounds.
fn u16_at(b: &[u8], at: usize) -> Option<u16> {
    let bytes: [u8; 2] = b.get(at..at + 2)?.try_into().ok()?;
    Some(u16::from_le_bytes(bytes))
}

/// Reads a `u32` at `at`; `None` if out of bounds.
pub fn u32_at(b: &[u8], at: usize) -> Option<u32> {
    let bytes: [u8; 4] = b.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// Reads a `u64` at `at`; `None` if out of bounds.
pub fn u64_at(b: &[u8], at: usize) -> Option<u64> {
    let bytes: [u8; 8] = b.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

/// Reads an `f64` at `at`; `None` if out of bounds.
fn f64_at(b: &[u8], at: usize) -> Option<f64> {
    Some(f64::from_bits(u64_at(b, at)?))
}

/// Decodes one record from exactly [`RECORD_BYTES`] bytes at the start
/// of `b`. Returns `None` if `b` is too short; trailing bytes are the
/// caller's business.
pub fn decode_record(b: &[u8]) -> Option<MachineHourRecord> {
    if b.len() < RECORD_BYTES {
        return None;
    }
    let machine = MachineId(u32_at(b, 0)?);
    let group = GroupKey::new(SkuId(u16_at(b, 4)?), ScId(*b.get(6)?));
    let hour = u64_at(b, 7)?;
    let mut at = 15;
    let mut field = || {
        let v = f64_at(b, at);
        at += 8;
        v
    };
    let metrics = MetricValues {
        total_data_read_gb: field()?,
        tasks_finished: field()?,
        task_exec_time_s: field()?,
        cpu_time_s: field()?,
        cpu_utilization: field()?,
        avg_running_containers: field()?,
        avg_task_latency_s: field()?,
        queued_containers: field()?,
        queue_latency_p99_ms: field()?,
        power_draw_w: field()?,
        ssd_used_gb: field()?,
        ram_used_gb: field()?,
        cores_used: field()?,
        network_used_gbps: field()?,
    };
    Some(MachineHourRecord { machine, group, hour, metrics })
}

/// Decodes `count` consecutive records from `b`, which must be exactly
/// `count * RECORD_BYTES` long.
pub fn decode_records(b: &[u8], count: usize) -> Option<Vec<MachineHourRecord>> {
    if b.len() != count.checked_mul(RECORD_BYTES)? {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for chunk in b.chunks_exact(RECORD_BYTES) {
        out.push(decode_record(chunk)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> MachineHourRecord {
        let f = |k: u64| (seed.wrapping_mul(k) % 1000) as f64 / 8.0;
        MachineHourRecord {
            machine: MachineId((seed % 5000) as u32),
            group: GroupKey::new(SkuId((seed % 300) as u16), ScId((seed % 7) as u8)),
            hour: seed.wrapping_mul(3600),
            metrics: MetricValues {
                total_data_read_gb: f(3),
                tasks_finished: f(5),
                task_exec_time_s: f(7),
                cpu_time_s: f(11),
                cpu_utilization: f(13),
                avg_running_containers: f(17),
                avg_task_latency_s: f(19),
                queued_containers: f(23),
                queue_latency_p99_ms: f(29),
                power_draw_w: f(31),
                ssd_used_gb: f(37),
                ram_used_gb: f(41),
                cores_used: f(43),
                network_used_gbps: f(47),
            },
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        for seed in [0u64, 1, 42, 86_016, u64::MAX] {
            let r = sample(seed);
            let mut buf = Vec::new();
            encode_record(&r, &mut buf);
            assert_eq!(buf.len(), RECORD_BYTES);
            let back = decode_record(&buf).expect("decodes");
            assert_eq!(back, r);
        }
    }

    #[test]
    fn short_buffer_is_none_not_panic() {
        let r = sample(9);
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        for cut in [0, 1, 6, 14, 126] {
            assert!(decode_record(buf.get(..cut).unwrap_or(&[])).is_none());
        }
    }

    #[test]
    fn batch_roundtrip_and_length_check() {
        let rs: Vec<_> = (0..17).map(|i| sample(i * 97 + 1)).collect();
        let mut buf = Vec::new();
        for r in &rs {
            encode_record(r, &mut buf);
        }
        assert_eq!(decode_records(&buf, rs.len()).as_deref(), Some(rs.as_slice()));
        assert!(decode_records(&buf, rs.len() + 1).is_none());
        buf.pop();
        assert!(decode_records(&buf, rs.len()).is_none());
    }
}
