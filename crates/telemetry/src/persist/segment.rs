//! Segment files: sealed [`ColumnIndex`] runs spilled to disk.
//!
//! A segment persists only the four core tables — the sorted records,
//! the interned machine list, and the two secondary-order permutations —
//! because everything else in the index (CSR offsets, dense ids, metric
//! columns) is an O(n) derivation. Writing is therefore a near-straight
//! dump; loading re-derives and *validates*, so a segment that passes
//! checksums but encodes a structurally inconsistent index is still
//! rejected.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic      8B   "KEASEG1\n"
//! version    u32  1
//! rows       u64  n
//! machines   u64  m
//! sections   4 × [len: u64][crc32: u32]   records, machines,
//!                                         hour_order, machine_order
//! header_crc u32  over everything above
//! body            the four sections, concatenated in table order
//! ```
//!
//! Permutation entries are `u32`; every row position is converted with
//! a checked narrowing at write time (`u32::try_from`) so a run past
//! `u32::MAX` rows surfaces a typed [`PersistError`] instead of
//! corrupting silently. A segment is ~135 bytes/row.
//!
//! [`read_header`] validates just the fixed header (magic, version,
//! header CRC, row/section accounting against the file length) without
//! decoding the body — the multi-segment store uses it at open so a
//! month of segments costs one small read each, and full decoding (with
//! every section CRC and structural invariant checked) happens lazily
//! on first query via [`load_segment`].
//!
//! On checksum or validation failure both entry points rename the file
//! to `<name>.quarantine` (best-effort) so the bad bytes survive for
//! forensics and never get mistaken for a live segment again, then
//! return [`PersistError::Corrupt`].

use std::path::{Path, PathBuf};

use super::codec::{self, RECORD_BYTES};
use super::crc::crc32;
use super::{fsync_dir, io_err, PersistError};
use crate::record::MachineId;
use crate::store::ColumnIndex;

/// Magic bytes opening every segment file.
pub const SEG_MAGIC: &[u8; 8] = b"KEASEG1\n";

/// On-disk format version this build reads and writes.
const SEG_VERSION: u32 = 1;

/// Fixed header size: magic + version + rows + machines + 4 section
/// descriptors + header CRC.
const HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 4 * 12 + 4;

/// Encodes a row permutation as little-endian `u32`s with a checked
/// narrowing per entry; `None` if any row position exceeds `u32::MAX`
/// (an index that large must never be spilled — the caller surfaces a
/// typed error at write time rather than truncating silently).
fn encode_order(order: &[usize]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(order.len() * 4);
    for &row in order {
        let row = u32::try_from(row).ok()?;
        out.extend_from_slice(&row.to_le_bytes());
    }
    Some(out)
}

/// Writes `index` as segment `name` inside `dir`: temp file, fsync,
/// rename into place, fsync the directory. The segment is fully valid
/// or invisible — a crash mid-write leaves only a `.tmp` orphan.
/// Returns the number of bytes written (the write-amplification
/// accounting behind [`super::SyncStats`]).
pub fn write_segment(dir: &Path, name: &str, index: &ColumnIndex) -> Result<u64, PersistError> {
    let n = index.sorted.len();
    let m = index.machines.len();
    let too_big = |what: &str| PersistError::Corrupt {
        path: dir.join(name),
        reason: format!("{what} exceeds u32::MAX; refusing to write a silently-truncated segment"),
    };
    if u32::try_from(n).is_err() {
        return Err(too_big("run row count"));
    }

    let mut records = Vec::with_capacity(n * RECORD_BYTES);
    for r in &index.sorted {
        codec::encode_record(r, &mut records);
    }
    let mut machines = Vec::with_capacity(m * 4);
    for mid in &index.machines {
        machines.extend_from_slice(&mid.0.to_le_bytes());
    }
    let hour_order =
        encode_order(&index.hour_order).ok_or_else(|| too_big("hour permutation row"))?;
    let machine_order =
        encode_order(&index.machine_order).ok_or_else(|| too_big("machine permutation row"))?;
    let sections = [&records, &machines, &hour_order, &machine_order];

    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(SEG_MAGIC);
    header.extend_from_slice(&SEG_VERSION.to_le_bytes());
    header.extend_from_slice(&u64::try_from(n).unwrap_or_default().to_le_bytes());
    header.extend_from_slice(&u64::try_from(m).unwrap_or_default().to_le_bytes());
    for s in sections {
        header.extend_from_slice(&u64::try_from(s.len()).unwrap_or_default().to_le_bytes());
        header.extend_from_slice(&crc32(s).to_le_bytes());
    }
    header.extend_from_slice(&crc32(&header).to_le_bytes());

    let mut bytes = header;
    for s in sections {
        bytes.extend_from_slice(s);
    }

    let tmp = dir.join(format!("{name}.tmp"));
    let path = dir.join(name);
    std::fs::write(&tmp, &bytes).map_err(io_err("write segment temp", &tmp))?;
    let f = std::fs::File::open(&tmp).map_err(io_err("reopen segment temp", &tmp))?;
    f.sync_all().map_err(io_err("fsync segment temp", &tmp))?;
    drop(f);
    std::fs::rename(&tmp, &path).map_err(io_err("rename segment", &path))?;
    fsync_dir(dir)?;
    Ok(u64::try_from(bytes.len()).unwrap_or(u64::MAX))
}

/// The validated accounting a segment header describes.
struct HeaderInfo {
    /// Row count.
    n: usize,
    /// Machine count.
    m: usize,
    /// The four section lengths in table order.
    lens: [usize; 4],
    /// Total file size the header implies (header + sections).
    total: usize,
}

/// Parses and validates the fixed header at the front of `bytes`
/// (magic, version, header CRC, row-count agreement, section-length
/// accounting). `bytes` may be just the header or the whole file.
fn parse_header(bytes: &[u8], expect_rows: u64) -> Result<HeaderInfo, String> {
    if bytes.get(..SEG_MAGIC.len()) != Some(SEG_MAGIC.as_slice()) {
        return Err("missing or unrecognized segment magic".to_string());
    }
    let version = codec::u32_at(bytes, 8).ok_or("truncated header")?;
    if version != SEG_VERSION {
        return Err(format!("unsupported segment version {version} (this build reads {SEG_VERSION})"));
    }
    let header = bytes.get(..HEADER_BYTES - 4).ok_or("truncated header")?;
    let header_crc = codec::u32_at(bytes, HEADER_BYTES - 4).ok_or("truncated header")?;
    if crc32(header) != header_crc {
        return Err("header checksum mismatch".to_string());
    }
    let n64 = codec::u64_at(bytes, 12).ok_or("truncated header")?;
    let m64 = codec::u64_at(bytes, 20).ok_or("truncated header")?;
    if n64 != expect_rows {
        return Err(format!("manifest says {expect_rows} rows, header says {n64}"));
    }
    let n = usize::try_from(n64).map_err(|_| "row count overflows usize")?;
    let m = usize::try_from(m64).map_err(|_| "machine count overflows usize")?;

    let mut lens = [0usize; 4];
    for (i, len) in lens.iter_mut().enumerate() {
        let at = 28 + i * 12;
        *len = usize::try_from(codec::u64_at(bytes, at).ok_or("truncated header")?)
            .map_err(|_| "section length overflows usize")?;
    }
    let total: usize = lens
        .iter()
        .try_fold(HEADER_BYTES, |acc, &l| acc.checked_add(l))
        .ok_or("section lengths overflow")?;
    let expect_lens = [
        n.checked_mul(RECORD_BYTES).ok_or("row count overflows")?,
        m.checked_mul(4).ok_or("machine count overflows")?,
        n.checked_mul(4).ok_or("row count overflows")?,
        n.checked_mul(4).ok_or("row count overflows")?,
    ];
    if lens != expect_lens {
        return Err("section lengths disagree with row/machine counts".to_string());
    }
    Ok(HeaderInfo { n, m, lens, total })
}

/// Validates segment `name`'s header without decoding the body: magic,
/// version, header CRC, row count against the manifest, and the file
/// length against the section accounting. This is the cheap open-time
/// check of the lazy-loading store; full body validation happens in
/// [`load_segment`] on first query. Header-level corruption quarantines
/// the file exactly like a load failure.
pub fn read_header(dir: &Path, name: &str, expect_rows: u64) -> Result<(), PersistError> {
    let path = dir.join(name);
    let mut header = vec![0u8; HEADER_BYTES];
    let outcome = (|| {
        use std::io::Read;
        let mut f = std::fs::File::open(&path).map_err(io_err("open segment", &path))?;
        let file_len = f
            .metadata()
            .map_err(io_err("stat segment", &path))?
            .len();
        if let Err(e) = f.read_exact(&mut header) {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                return Ok(Err("truncated header".to_string()));
            }
            return Err(io_err("read segment header", &path)(e));
        }
        match parse_header(&header, expect_rows) {
            Ok(info) => {
                if u64::try_from(info.total).ok() != Some(file_len) {
                    return Ok(Err(format!(
                        "file is {file_len} bytes, sections describe {}",
                        info.total
                    )));
                }
                Ok(Ok(()))
            }
            Err(reason) => Ok(Err(reason)),
        }
    })();
    match outcome {
        Ok(Ok(())) => Ok(()),
        Ok(Err(reason)) => Err(quarantine(dir, name, &path, reason)),
        Err(io) => Err(io),
    }
}

/// Loads segment `name` from `dir`, verifying every checksum and the
/// structural invariants, and expecting exactly `expect_rows` rows (the
/// count recorded in the manifest) and, when given, the inclusive
/// `expect_bounds` hour range recorded there too. Corruption quarantines
/// the file and returns a typed error; it never panics.
pub fn load_segment(
    dir: &Path,
    name: &str,
    expect_rows: u64,
    expect_bounds: Option<(u64, u64)>,
) -> Result<ColumnIndex, PersistError> {
    let path = dir.join(name);
    let bytes = std::fs::read(&path).map_err(io_err("read segment", &path))?;
    match parse_segment(&bytes, expect_rows) {
        Ok(index) => {
            if let Some((lo, hi)) = expect_bounds {
                let got = index.hours.first().copied().zip(index.hours.last().copied());
                if got != Some((lo, hi)) {
                    return Err(quarantine(
                        dir,
                        name,
                        &path,
                        format!("manifest says hours [{lo}, {hi}], segment covers {got:?}"),
                    ));
                }
            }
            Ok(index)
        }
        Err(reason) => Err(quarantine(dir, name, &path, reason)),
    }
}

/// Parses and validates a whole segment image. `Err` carries the
/// human-readable reason; the caller turns it into a quarantine.
fn parse_segment(bytes: &[u8], expect_rows: u64) -> Result<ColumnIndex, String> {
    let HeaderInfo { n, m, lens, total } = parse_header(bytes, expect_rows)?;
    if bytes.len() != total {
        return Err(format!("file is {} bytes, sections describe {total}", bytes.len()));
    }
    // Section CRCs from the (already-validated) descriptors.
    let mut crcs = [0u32; 4];
    for (i, crc) in crcs.iter_mut().enumerate() {
        *crc = codec::u32_at(bytes, 28 + i * 12 + 8).ok_or("truncated header")?;
    }
    let mut sections = [&[] as &[u8]; 4];
    let mut at = HEADER_BYTES;
    for ((sec, &len), (i, &crc)) in
        sections.iter_mut().zip(&lens).zip(crcs.iter().enumerate())
    {
        let s = bytes.get(at..at + len).ok_or("truncated section")?;
        if crc32(s) != crc {
            return Err(format!("section {i} checksum mismatch"));
        }
        *sec = s;
        at += len;
    }
    let [records_b, machines_b, hour_b, machine_b] = sections;

    let sorted = codec::decode_records(records_b, n).ok_or("record section malformed")?;
    let machines: Vec<MachineId> = machines_b
        .chunks_exact(4)
        .filter_map(|c| codec::u32_at(c, 0).map(MachineId))
        .collect();
    if machines.len() != m {
        return Err("machine section malformed".to_string());
    }
    let decode_order = |b: &[u8]| -> Vec<usize> {
        b.chunks_exact(4)
            .filter_map(|c| codec::u32_at(c, 0).map(|v| v as usize))
            .collect()
    };
    let hour_order = decode_order(hour_b);
    let machine_order = decode_order(machine_b);

    ColumnIndex::from_persisted(sorted, machines, hour_order, machine_order)
        .ok_or_else(|| "index invariants violated (unsorted rows or bad permutation)".to_string())
}

/// Renames a corrupt file to `<name>.quarantine` (best-effort; the
/// original path is reported either way) and builds the typed error.
fn quarantine(dir: &Path, name: &str, path: &Path, reason: String) -> PersistError {
    let qpath: PathBuf = dir.join(format!("{name}.quarantine"));
    let moved = std::fs::rename(path, &qpath).is_ok();
    let _ = fsync_dir(dir);
    PersistError::Corrupt {
        path: path.to_path_buf(),
        reason: if moved {
            format!("{reason}; file quarantined as {}", qpath.display())
        } else {
            reason
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GroupKey, MachineHourRecord, MetricValues, ScId, SkuId};

    fn records(n: u64) -> Vec<MachineHourRecord> {
        (0..n)
            .map(|i| MachineHourRecord {
                machine: MachineId((i % 7) as u32),
                group: GroupKey::new(SkuId((i % 3) as u16), ScId((i % 2) as u8)),
                hour: i / 7,
                metrics: MetricValues {
                    tasks_finished: i as f64,
                    cpu_time_s: (i as f64) * 0.25,
                    ..MetricValues::default()
                },
            })
            .collect()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("kea-seg-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_load_is_identical() {
        let dir = tmpdir("roundtrip");
        let index = ColumnIndex::build(&records(500));
        write_segment(&dir, "seg-000001.kseg", &index).unwrap();
        let back = load_segment(&dir, "seg-000001.kseg", 500, None).unwrap();
        assert_eq!(back.sorted, index.sorted);
        assert_eq!(back.machines, index.machines);
        assert_eq!(back.hour_order, index.hour_order);
        assert_eq!(back.machine_order, index.machine_order);
        assert_eq!(back.columns, index.columns);
        assert_eq!(back.group_offsets, index.group_offsets);
        assert_eq!(back.hour_offsets, index.hour_offsets);
        assert_eq!(back.machine_offsets, index.machine_offsets);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_validation_accepts_good_segment_and_bounds_check_works() {
        let dir = tmpdir("header");
        let index = ColumnIndex::build(&records(210)); // hours 0..=29
        write_segment(&dir, "seg-000001.kseg", &index).unwrap();
        read_header(&dir, "seg-000001.kseg", 210).unwrap();
        // Matching bounds load cleanly.
        load_segment(&dir, "seg-000001.kseg", 210, Some((0, 29))).unwrap();
        // Mismatched manifest bounds are corruption, not silence.
        let err = load_segment(&dir, "seg-000001.kseg", 210, Some((0, 99))).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }));
        assert!(dir.join("seg-000001.kseg.quarantine").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_validation_rejects_wrong_rows_and_truncation() {
        let dir = tmpdir("header-bad");
        let index = ColumnIndex::build(&records(64));
        write_segment(&dir, "seg-000001.kseg", &index).unwrap();
        let bytes = std::fs::read(dir.join("seg-000001.kseg")).unwrap();
        // Wrong manifest row count.
        std::fs::write(dir.join("a.kseg"), &bytes).unwrap();
        assert!(matches!(
            read_header(&dir, "a.kseg", 65).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
        assert!(dir.join("a.kseg.quarantine").exists());
        // Body shorter than the header promises (caught without decoding).
        std::fs::write(dir.join("b.kseg"), &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_header(&dir, "b.kseg", 64).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
        // File shorter than the header itself.
        std::fs::write(dir.join("c.kseg"), &bytes[..10]).unwrap();
        assert!(matches!(
            read_header(&dir, "c.kseg", 64).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression (satellite bugfix): permutation rows used to be
    /// narrowed with a bare `as u32`, silently truncating any row past
    /// `u32::MAX`. The encoder now uses a checked conversion; an
    /// impossible row position is refused, never wrapped.
    #[test]
    #[cfg(target_pointer_width = "64")]
    fn permutation_row_past_u32_is_refused_not_truncated() {
        let big = u32::MAX as usize + 1;
        assert_eq!(encode_order(&[0, big]), None, "oversized row must not encode");
        // In-range rows still encode exactly.
        let ok = encode_order(&[0, 1, u32::MAX as usize]).unwrap();
        assert_eq!(ok.len(), 12);
        assert_eq!(&ok[8..], &u32::MAX.to_le_bytes());
    }

    #[test]
    fn empty_run_roundtrips() {
        let dir = tmpdir("empty");
        let index = ColumnIndex::build(&[]);
        write_segment(&dir, "seg-000001.kseg", &index).unwrap();
        let back = load_segment(&dir, "seg-000001.kseg", 0, None).unwrap();
        assert!(back.sorted.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_flip_quarantines_not_panics() {
        let dir = tmpdir("flip");
        let index = ColumnIndex::build(&records(300));
        write_segment(&dir, "seg-000001.kseg", &index).unwrap();
        let path = dir.join("seg-000001.kseg");
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        // Flip one byte in several positions: header, each section.
        for (i, at) in [4usize, 40, HEADER_BYTES + 3, len - 5].into_iter().enumerate() {
            let name = format!("seg-{i}.kseg");
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[at] ^= 0x40;
            std::fs::write(dir.join(&name), &bytes).unwrap();
            let err = load_segment(&dir, &name, 300, None).unwrap_err();
            assert!(matches!(err, PersistError::Corrupt { .. }), "at byte {at}: {err}");
            assert!(dir.join(format!("{name}.quarantine")).exists(), "at byte {at}");
            assert!(!dir.join(&name).exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn row_count_mismatch_with_manifest_is_corrupt() {
        let dir = tmpdir("rows");
        let index = ColumnIndex::build(&records(64));
        write_segment(&dir, "seg-000001.kseg", &index).unwrap();
        let err = load_segment(&dir, "seg-000001.kseg", 65, None).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_is_corrupt_not_panic() {
        let dir = tmpdir("trunc");
        let index = ColumnIndex::build(&records(200));
        write_segment(&dir, "seg-000001.kseg", &index).unwrap();
        let bytes = std::fs::read(dir.join("seg-000001.kseg")).unwrap();
        for cut in [0usize, 7, HEADER_BYTES - 2, HEADER_BYTES + 100, bytes.len() - 1] {
            std::fs::write(dir.join("cut.kseg"), &bytes[..cut]).unwrap();
            let err = load_segment(&dir, "cut.kseg", 200, None).unwrap_err();
            assert!(matches!(err, PersistError::Corrupt { .. }), "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
