//! Write-ahead log for the delta tail of a durable [`TelemetryStore`].
//!
//! Layout: an 8-byte magic (`KEAWAL1\n`) followed by frames. Each frame
//! is `[payload_len: u32][crc32: u32][payload]` with the CRC taken over
//! the payload; the payload is `[count: u32]` followed by `count`
//! fixed-width records ([`codec::RECORD_BYTES`] each). One `sync()`
//! writes one frame for everything appended since the last sync, then
//! issues a single `fdatasync` — fsync-on-batch, not fsync-per-record.
//!
//! Replay walks frames from the front and stops at the first
//! inconsistency — short header, implausible length, CRC mismatch, or
//! short payload. Everything before the stop point is intact by
//! checksum; everything after is a torn tail from a crash mid-write and
//! is truncated (`set_len`) so subsequent appends land on a clean
//! boundary. A torn tail is an expected outcome, not an error.
//!
//! The log also tracks its own clean high-water mark in memory: a batch
//! that fails partway through an [`Wal::append`] marks the log torn, and
//! the next append first truncates back to the last fully-written batch
//! boundary. A failed append therefore leaves nothing behind — retrying
//! it cannot produce duplicate frames, which is what makes the store's
//! sync retry idempotent.
//!
//! [`TelemetryStore`]: crate::TelemetryStore

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::codec::{self, RECORD_BYTES};
use super::crc::crc32;
use super::{io_err, test_hooks, PersistError};
use crate::record::MachineHourRecord;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"KEAWAL1\n";

/// Frame header size: payload length + CRC, both `u32`.
const FRAME_HEADER: usize = 8;

/// Cap on records per frame so the payload length always fits a `u32`
/// (2^24 records ≈ 2.1 GB payload; batches larger than this are split
/// across frames).
const MAX_FRAME_RECORDS: usize = 1 << 24;

/// An open WAL positioned at its end, ready to append.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes written so far (may include a torn batch; see `torn`).
    len: u64,
    /// Length of the longest prefix containing only fully-appended
    /// batches — where the next append restarts from after a failure.
    clean_len: u64,
    /// Set when an append failed partway; the file may hold a partial
    /// frame past `clean_len` that must be truncated before reuse.
    torn: bool,
}

/// Outcome of replaying a WAL on open.
#[derive(Debug)]
pub struct WalReplay {
    /// The reopened log, truncated past any torn tail.
    pub wal: Wal,
    /// Every record recovered from intact frames, in append order.
    pub records: Vec<MachineHourRecord>,
    /// Byte offset the file was truncated to, if a torn tail was found.
    /// Read by the recovery tests; production recovery treats a torn
    /// tail as routine and does not branch on it.
    #[cfg_attr(not(test), allow(dead_code))]
    pub truncated_at: Option<u64>,
}

impl Wal {
    /// Creates a fresh WAL at `path` (truncating any existing file),
    /// writes the magic and any initial `records` as one frame, and
    /// fsyncs. The caller is responsible for directory-level fsync
    /// after renames.
    pub fn create(path: &Path, records: &[MachineHourRecord]) -> Result<Wal, PersistError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err("create wal", path))?;
        let magic_len = WAL_MAGIC.len() as u64;
        let mut wal = Wal {
            file,
            path: path.to_path_buf(),
            len: magic_len,
            clean_len: magic_len,
            torn: false,
        };
        wal.file
            .write_all(WAL_MAGIC)
            .map_err(io_err("write wal magic", path))?;
        wal.append(records)?;
        wal.sync()?;
        Ok(wal)
    }

    /// Opens an existing WAL, replays every intact frame, truncates any
    /// torn tail, and leaves the file positioned for appending.
    pub fn open(path: &Path) -> Result<WalReplay, PersistError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err("open wal", path))?;
        let bytes = std::fs::read(path).map_err(io_err("read wal", path))?;
        if bytes.get(..WAL_MAGIC.len()) != Some(WAL_MAGIC.as_slice()) {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                reason: "missing or unrecognized WAL magic".to_string(),
            });
        }

        let mut records = Vec::new();
        let mut at = WAL_MAGIC.len();
        let mut truncated_at = None;
        while let Some(frame) = bytes.get(at..) {
            if frame.is_empty() {
                break;
            }
            let intact = parse_frame(frame);
            match intact {
                Some((consumed, mut frame_records)) => {
                    records.append(&mut frame_records);
                    at += consumed;
                }
                None => {
                    // Torn tail: keep the intact prefix, drop the rest.
                    truncated_at = Some(at as u64);
                    file.set_len(at as u64).map_err(io_err("truncate wal tail", path))?;
                    break;
                }
            }
        }

        file.seek(SeekFrom::Start(at as u64)).map_err(io_err("seek wal end", path))?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            len: at as u64,
            clean_len: at as u64,
            torn: false,
        };
        Ok(WalReplay { wal, records, truncated_at })
    }

    /// Current logical length in bytes: everything up to the last
    /// fully-appended batch. Feeds the store's per-sync write
    /// accounting.
    pub fn byte_len(&self) -> u64 {
        if self.torn { self.clean_len } else { self.len }
    }

    /// Appends `records` as one frame (split only past the 2^24-record
    /// cap) without fsyncing; pair with [`Wal::sync`]. The batch is
    /// all-or-nothing: on failure the log is marked torn and the next
    /// append truncates back to the pre-batch boundary first, so a
    /// retried batch never duplicates frames.
    pub fn append(&mut self, records: &[MachineHourRecord]) -> Result<(), PersistError> {
        if self.torn {
            // Erase the partial frame(s) a previous failed batch left
            // behind before writing anything new.
            self.file
                .set_len(self.clean_len)
                .map_err(io_err("truncate torn wal batch", &self.path))?;
            self.file
                .seek(SeekFrom::Start(self.clean_len))
                .map_err(io_err("seek wal clean end", &self.path))?;
            self.len = self.clean_len;
            self.torn = false;
        }
        let mut rest = records;
        loop {
            let take = rest.len().min(MAX_FRAME_RECORDS);
            let (head, tail) = (
                rest.get(..take).unwrap_or_default(),
                rest.get(take..).unwrap_or_default(),
            );
            self.append_frame(head)?;
            if tail.is_empty() {
                break;
            }
            rest = tail;
        }
        self.clean_len = self.len;
        Ok(())
    }

    fn append_frame(&mut self, records: &[MachineHourRecord]) -> Result<(), PersistError> {
        let count = u32::try_from(records.len()).map_err(|_| PersistError::Corrupt {
            path: self.path.clone(),
            reason: "frame record count exceeds u32".to_string(),
        })?;
        let mut payload = Vec::with_capacity(4 + records.len() * RECORD_BYTES);
        payload.extend_from_slice(&count.to_le_bytes());
        for r in records {
            codec::encode_record(r, &mut payload);
        }
        let len = u32::try_from(payload.len()).map_err(|_| PersistError::Corrupt {
            path: self.path.clone(),
            reason: "frame payload exceeds u32 bytes".to_string(),
        })?;
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // Crash-injection point for the crash suite: write only a
        // prefix of the frame, then fail — exactly what a full disk or
        // power cut mid-write leaves behind.
        if let Some(cut) = test_hooks::take_wal_append_failure(&self.path) {
            let cut = usize::try_from(cut).unwrap_or(usize::MAX).min(frame.len());
            let _ = self.file.write_all(frame.get(..cut).unwrap_or_default());
            self.torn = true;
            return Err(PersistError::Io {
                op: "append wal frame (injected failure)",
                path: self.path.clone(),
                source: std::io::Error::other("injected mid-frame append failure"),
            });
        }
        if let Err(e) = self.file.write_all(&frame) {
            // A short write may have landed part of the frame; mark the
            // batch torn so a retry starts from the clean boundary.
            self.torn = true;
            return Err(io_err("append wal frame", &self.path)(e));
        }
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Flushes appended frames to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), PersistError> {
        // Crash-injection point: the frames hit the file, the barrier
        // did not. The data is all written (a later sync persists it) —
        // the caller must not re-append it on retry.
        if test_hooks::take_wal_sync_failure(&self.path) {
            return Err(PersistError::Io {
                op: "fsync wal (injected failure)",
                path: self.path.clone(),
                source: std::io::Error::other("injected wal fsync failure"),
            });
        }
        self.file.sync_data().map_err(io_err("fsync wal", &self.path))
    }
}

/// Parses one frame at the start of `bytes`. Returns the consumed byte
/// count and the decoded records, or `None` if the frame is torn or
/// corrupt in any way.
fn parse_frame(bytes: &[u8]) -> Option<(usize, Vec<MachineHourRecord>)> {
    let len = codec::u32_at(bytes, 0)? as usize;
    let crc = codec::u32_at(bytes, 4)?;
    let payload = bytes.get(FRAME_HEADER..FRAME_HEADER + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let count = codec::u32_at(payload, 0)? as usize;
    let body = payload.get(4..)?;
    let records = codec::decode_records(body, count)?;
    Some((FRAME_HEADER + len, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GroupKey, MachineId, MetricValues, ScId, SkuId};

    fn rec(i: u64) -> MachineHourRecord {
        MachineHourRecord {
            machine: MachineId(i as u32),
            group: GroupKey::new(SkuId((i % 3) as u16), ScId(0)),
            hour: i,
            metrics: MetricValues { tasks_finished: i as f64, ..MetricValues::default() },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("kea-wal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn create_append_reopen_roundtrip() {
        let path = tmp("roundtrip");
        let first: Vec<_> = (0..10).map(rec).collect();
        let mut wal = Wal::create(&path, &first).unwrap();
        let second: Vec<_> = (10..25).map(rec).collect();
        wal.append(&second).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.byte_len(), std::fs::metadata(&path).unwrap().len());
        drop(wal);

        let replay = Wal::open(&path).unwrap();
        let want: Vec<_> = (0..25).map(rec).collect();
        assert_eq!(replay.records, want);
        assert!(replay.truncated_at.is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, &(0..8).map(rec).collect::<Vec<_>>()).unwrap();
        wal.append(&(8..16).map(rec).collect::<Vec<_>>()).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Chop mid-way through the second frame.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 40).unwrap();
        drop(f);

        let replay = Wal::open(&path).unwrap();
        assert_eq!(replay.records, (0..8).map(rec).collect::<Vec<_>>());
        assert!(replay.truncated_at.is_some());

        // The truncated log accepts new appends and replays cleanly.
        let mut wal = replay.wal;
        wal.append(&[rec(99)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let replay = Wal::open(&path).unwrap();
        let mut want: Vec<_> = (0..8).map(rec).collect();
        want.push(rec(99));
        assert_eq!(replay.records, want);
        assert!(replay.truncated_at.is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_crc_drops_frame_and_tail() {
        let path = tmp("crc");
        let mut wal = Wal::create(&path, &(0..4).map(rec).collect::<Vec<_>>()).unwrap();
        wal.append(&(4..8).map(rec).collect::<Vec<_>>()).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Flip a payload byte inside the second frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_frame = 8 + 8 + (4 + 4 * RECORD_BYTES);
        bytes[first_frame + FRAME_HEADER + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let replay = Wal::open(&path).unwrap();
        assert_eq!(replay.records, (0..4).map(rec).collect::<Vec<_>>());
        assert_eq!(replay.truncated_at, Some(first_frame as u64));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn bad_magic_is_typed_error() {
        let path = tmp("magic");
        std::fs::write(&path, b"not a wal at all").unwrap();
        let err = Wal::open(&path).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    /// A batch that fails mid-frame leaves the log torn; retrying the
    /// same batch truncates the partial frame first, so replay sees the
    /// batch exactly once.
    #[test]
    fn failed_batch_retries_without_duplicates() {
        let path = tmp("retry");
        let dir = path.parent().unwrap().to_path_buf();
        let mut wal = Wal::create(&path, &(0..6).map(rec).collect::<Vec<_>>()).unwrap();
        let batch: Vec<_> = (6..12).map(rec).collect();

        test_hooks::fail_wal_append_mid_frame(&dir, 20);
        let err = wal.append(&batch).unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }));
        // Partial bytes are on disk but excluded from the logical length.
        assert!(std::fs::metadata(&path).unwrap().len() > wal.byte_len());

        wal.append(&batch).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let replay = Wal::open(&path).unwrap();
        assert_eq!(replay.records, (0..12).map(rec).collect::<Vec<_>>());
        assert!(replay.truncated_at.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
