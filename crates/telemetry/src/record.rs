//! Machine-hour telemetry records and the identifiers they hang off.
//!
//! The paper's Level-IV/V abstractions (Figure 4) reduce everything to
//! per-machine, per-hour observations tagged with the machine's
//! `(SC, SKU)` group. These types are that schema.

/// Identifier of a physical machine within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

/// Identifier of a hardware generation (stock keeping unit). The paper's
/// clusters carry 6–9 SKUs (Gen 1.1 … Gen 4.1 in Figures 2/9/10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkuId(pub u16);

/// Identifier of a software configuration. The paper studies two: SC1
/// (local temp store on HDD) and SC2 (on SSD), §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScId(pub u8);

/// A machine group: the `(SC, SKU)` combination indexed by `k` throughout
/// the paper's equations. All KEA models are fitted per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey {
    /// Hardware generation.
    pub sku: SkuId,
    /// Software configuration.
    pub sc: ScId,
}

impl GroupKey {
    /// Convenience constructor.
    pub fn new(sku: SkuId, sc: ScId) -> Self {
        GroupKey { sku, sc }
    }
}

/// The metric values observed for one machine over one hour.
///
/// Field selection follows Table 2 of the paper plus the metrics required
/// by the queueing discussion (§5.3, Figure 12), SKU design (§6, Figure
/// 13), and power capping (§7.2, Figure 15). Derived ratio metrics (Bytes
/// per Second, Bytes per CPU Time) are computed on demand to keep stored
/// state minimal and consistent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricValues {
    /// Total bytes read in the hour, in gigabytes ("Total Data Read").
    pub total_data_read_gb: f64,
    /// Tasks finished in the hour ("Number of Tasks").
    pub tasks_finished: f64,
    /// Sum of task execution time in seconds over the hour.
    pub task_exec_time_s: f64,
    /// Sum of task CPU time in seconds over the hour.
    pub cpu_time_s: f64,
    /// Time-average CPU utilization in percent (0–100).
    pub cpu_utilization: f64,
    /// Time-average number of running containers.
    pub avg_running_containers: f64,
    /// Mean task latency in seconds over the hour.
    pub avg_task_latency_s: f64,
    /// Time-average number of queued (low-priority) containers.
    pub queued_containers: f64,
    /// 99th-percentile queueing latency in milliseconds.
    pub queue_latency_p99_ms: f64,
    /// Mean electrical power draw in watts.
    pub power_draw_w: f64,
    /// Mean SSD capacity in use, gigabytes.
    pub ssd_used_gb: f64,
    /// Mean RAM in use, gigabytes.
    pub ram_used_gb: f64,
    /// Mean CPU cores in use.
    pub cores_used: f64,
    /// Mean network bandwidth in use, Gbit/s (the "other resource" of
    /// §6.2 the same methodology extends to).
    pub network_used_gbps: f64,
}

impl MetricValues {
    /// "Bytes per Second": ratio of total data read to total execution
    /// time (Table 2). Returns 0 for an idle hour.
    pub fn bytes_per_second(&self) -> f64 {
        if self.task_exec_time_s <= 0.0 {
            0.0
        } else {
            self.total_data_read_gb * 1e9 / self.task_exec_time_s
        }
    }

    /// "Bytes per CPU Time": ratio of total data read to total CPU time
    /// (Table 2). Returns 0 for an idle hour.
    pub fn bytes_per_cpu_time(&self) -> f64 {
        if self.cpu_time_s <= 0.0 {
            0.0
        } else {
            self.total_data_read_gb * 1e9 / self.cpu_time_s
        }
    }

    /// True when every stored value is finite (guards the analysis
    /// pipeline against simulator bugs).
    pub fn is_finite(&self) -> bool {
        [
            self.total_data_read_gb,
            self.tasks_finished,
            self.task_exec_time_s,
            self.cpu_time_s,
            self.cpu_utilization,
            self.avg_running_containers,
            self.avg_task_latency_s,
            self.queued_containers,
            self.queue_latency_p99_ms,
            self.power_draw_w,
            self.ssd_used_gb,
            self.ram_used_gb,
            self.cores_used,
            self.network_used_gbps,
        ]
        .iter()
        .all(|v| v.is_finite())
    }
}

/// One telemetry observation: a machine, its group, an hour index, and the
/// metrics measured during that hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineHourRecord {
    /// Which machine.
    pub machine: MachineId,
    /// The machine's `(SC, SKU)` group at observation time.
    pub group: GroupKey,
    /// Hour index since the start of the observation window.
    pub hour: u64,
    /// Measured metrics.
    pub metrics: MetricValues,
}

impl MachineHourRecord {
    /// Day index of this record (24-hour days).
    pub fn day(&self) -> u64 {
        self.hour / 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_key_equality_and_ordering() {
        let a = GroupKey::new(SkuId(1), ScId(0));
        let b = GroupKey::new(SkuId(1), ScId(0));
        let c = GroupKey::new(SkuId(2), ScId(0));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c);
    }

    #[test]
    fn derived_ratios() {
        let m = MetricValues {
            total_data_read_gb: 2.0,
            task_exec_time_s: 1000.0,
            cpu_time_s: 500.0,
            ..Default::default()
        };
        assert!((m.bytes_per_second() - 2e9 / 1000.0).abs() < 1e-6);
        assert!((m.bytes_per_cpu_time() - 2e9 / 500.0).abs() < 1e-6);
    }

    #[test]
    fn derived_ratios_idle_hour() {
        let m = MetricValues::default();
        assert_eq!(m.bytes_per_second(), 0.0);
        assert_eq!(m.bytes_per_cpu_time(), 0.0);
    }

    #[test]
    fn finiteness_guard() {
        let mut m = MetricValues::default();
        assert!(m.is_finite());
        m.power_draw_w = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn day_index() {
        let rec = MachineHourRecord {
            machine: MachineId(1),
            group: GroupKey::new(SkuId(0), ScId(0)),
            hour: 49,
            metrics: MetricValues::default(),
        };
        assert_eq!(rec.day(), 2);
    }
}
