//! Telemetry schema and store for the KEA reproduction.
//!
//! KEA's Performance Monitor "joins data from various Cosmos sources and
//! calculates the performance metrics of interest, providing a fundamental
//! building block for all the analysis" (§4.1). This crate is the shared
//! vocabulary between the cluster simulator (which *emits* telemetry) and
//! KEA proper (which *consumes* it):
//!
//! * [`metric`] — the machine-group-level metrics of Table 2
//!   (Total Data Read, Number of Tasks, Bytes per Second, Bytes per CPU
//!   Time, CPU Utilization, Average Running Containers) plus the extended
//!   metrics used by the applications (queueing, power, SSD/RAM usage).
//! * [`record`] — one observation per machine per hour, the granularity of
//!   the paper's scatter view (Figure 8: "each point corresponding to one
//!   observation for a machine during one hour").
//! * [`store`] — an in-memory append-only store shaped like an LSM
//!   tree: N immutable **sealed runs** (columnar, indexed layout —
//!   sorted `(group, hour, machine)` rows, interned dense ids,
//!   offset-range indexes, struct-of-arrays metric columns), each
//!   carrying its `[min_hour, max_hour]` bounds, plus a small **delta
//!   buffer** that absorbs streaming appends. Every filtered view k-way
//!   merges the sorted sides; hour-windowed queries consult only the
//!   runs whose bounds intersect the window. The delta seals into a new
//!   run past a size threshold (or on explicit `seal()`), and a
//!   binary-counter ladder compaction bounds both the live run count
//!   (logarithmic) and total re-merge work (`O(log n)` per record) — a
//!   live monitor never pays an `O(n log n)` rebuild per batch. The
//!   pre-columnar flat store survives as [`store::reference`].
//! * [`csv`] — flat-file persistence with schema checking and typed
//!   rejection of non-finite metric values.
//! * [`persist`] — durable storage mirroring the LSM shape on disk: a
//!   checksummed write-ahead log for the delta tail, one immutable
//!   segment file per sealed run, and an atomically-flipped manifest
//!   naming the live file set with per-segment row counts and hour
//!   bounds. [`TelemetryStore::open`] recovers a directory (headers
//!   validated eagerly, bodies decoded lazily on first query, torn WAL
//!   tails truncated, corrupt files quarantined, never a panic);
//!   [`TelemetryStore::sync`] makes appended records durable with one
//!   fsync per batch and never rewrites an unchanged segment.
//! * [`aggregate`] — fused single-pass aggregation kernels k-way merged
//!   over the sealed runs + delta (hourly→daily roll-ups, per-group
//!   summaries, fleet series, group utilization), work-stealing
//!   parallel across groups, plus the scatter-view extraction that
//!   feeds model fitting and hour-windowed variants
//!   ([`daily_group_aggregates_window`], [`hourly_fleet_series_window`])
//!   that ride the store's segment pruning. Pre-columnar roll-ups
//!   survive as [`aggregate::reference`].
//!
//! The key design decision mirrors the paper's Level-V abstraction: all
//! analysis happens at the `(software configuration, SKU)` machine-group
//! level, so every record carries a [`record::GroupKey`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregate;
pub mod csv;
pub mod metric;
pub mod persist;
pub mod record;
pub mod store;

pub use aggregate::{
    daily_group_aggregates, daily_group_aggregates_window, group_summary, group_utilization,
    hourly_fleet_series, hourly_fleet_series_window, scatter, DailyAggregate, GroupUtilization,
    ScatterPoint,
};
pub use csv::{read_csv, write_csv, CsvError};
pub use persist::{PersistError, SyncStats};
pub use metric::{Metric, MetricCategory};
pub use record::{GroupKey, MachineHourRecord, MachineId, MetricValues, ScId, SkuId};
pub use store::TelemetryStore;
