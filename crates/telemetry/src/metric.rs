//! The machine-group-level metric catalog (Table 2).
//!
//! A [`Metric`] names a column of the telemetry and knows how to extract
//! itself from a [`MetricValues`], which lets aggregation, scatter views,
//! and model fitting be written once, generically over metrics.

use crate::record::MetricValues;

/// Which system property a metric speaks to — the "Affected System
/// Metrics" column of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricCategory {
    /// Throughput rate (data read, task completion).
    Throughput,
    /// CPU processing efficiency.
    CpuProcessing,
    /// Utilization level of the machine.
    UtilizationLevel,
    /// Latency experienced by tasks or queued containers.
    Latency,
    /// Physical resource consumption (power, SSD, RAM, cores).
    ResourceUsage,
}

/// A machine-group-level performance metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Total bytes read per hour per machine (GB).
    TotalDataRead,
    /// Total number of tasks finished per hour per machine.
    NumberOfTasks,
    /// Total data read / total task execution time (bytes/s).
    BytesPerSecond,
    /// Total data read / total CPU time (bytes/CPU-s).
    BytesPerCpuTime,
    /// Time-average CPU utilization per hour (%).
    CpuUtilization,
    /// Time-average running containers per hour.
    AverageRunningContainers,
    /// Mean task latency (s).
    AverageTaskLatency,
    /// Time-average queued low-priority containers.
    QueuedContainers,
    /// 99th-percentile queueing latency (ms).
    QueueLatencyP99,
    /// Mean power draw (W).
    PowerDraw,
    /// Mean SSD capacity in use (GB).
    SsdUsed,
    /// Mean RAM in use (GB).
    RamUsed,
    /// Mean CPU cores in use.
    CoresUsed,
    /// Mean network bandwidth in use (Gbit/s).
    NetworkUsed,
}

impl Metric {
    /// All metrics, in a stable reporting order.
    pub const ALL: [Metric; 14] = [
        Metric::TotalDataRead,
        Metric::NumberOfTasks,
        Metric::BytesPerSecond,
        Metric::BytesPerCpuTime,
        Metric::CpuUtilization,
        Metric::AverageRunningContainers,
        Metric::AverageTaskLatency,
        Metric::QueuedContainers,
        Metric::QueueLatencyP99,
        Metric::PowerDraw,
        Metric::SsdUsed,
        Metric::RamUsed,
        Metric::CoresUsed,
        Metric::NetworkUsed,
    ];

    /// Position of this metric in [`Metric::ALL`] (and therefore in every
    /// per-metric column or row array). `const` so dense kernels can use
    /// it in array indexing without a linear search.
    pub const fn index(self) -> usize {
        match self {
            Metric::TotalDataRead => 0,
            Metric::NumberOfTasks => 1,
            Metric::BytesPerSecond => 2,
            Metric::BytesPerCpuTime => 3,
            Metric::CpuUtilization => 4,
            Metric::AverageRunningContainers => 5,
            Metric::AverageTaskLatency => 6,
            Metric::QueuedContainers => 7,
            Metric::QueueLatencyP99 => 8,
            Metric::PowerDraw => 9,
            Metric::SsdUsed => 10,
            Metric::RamUsed => 11,
            Metric::CoresUsed => 12,
            Metric::NetworkUsed => 13,
        }
    }

    /// All metric values of one record as a row array in [`Metric::ALL`]
    /// order (`row[m.index()] == m.value(values)`), including the derived
    /// ratio metrics. One call per record replaces 14 enum dispatches in
    /// the aggregation kernels.
    pub fn row_of(m: &MetricValues) -> [f64; Self::ALL.len()] {
        [
            m.total_data_read_gb,
            m.tasks_finished,
            m.bytes_per_second(),
            m.bytes_per_cpu_time(),
            m.cpu_utilization,
            m.avg_running_containers,
            m.avg_task_latency_s,
            m.queued_containers,
            m.queue_latency_p99_ms,
            m.power_draw_w,
            m.ssd_used_gb,
            m.ram_used_gb,
            m.cores_used,
            m.network_used_gbps,
        ]
    }

    /// Extracts this metric's value from a record's metric block.
    pub fn value(&self, m: &MetricValues) -> f64 {
        match self {
            Metric::TotalDataRead => m.total_data_read_gb,
            Metric::NumberOfTasks => m.tasks_finished,
            Metric::BytesPerSecond => m.bytes_per_second(),
            Metric::BytesPerCpuTime => m.bytes_per_cpu_time(),
            Metric::CpuUtilization => m.cpu_utilization,
            Metric::AverageRunningContainers => m.avg_running_containers,
            Metric::AverageTaskLatency => m.avg_task_latency_s,
            Metric::QueuedContainers => m.queued_containers,
            Metric::QueueLatencyP99 => m.queue_latency_p99_ms,
            Metric::PowerDraw => m.power_draw_w,
            Metric::SsdUsed => m.ssd_used_gb,
            Metric::RamUsed => m.ram_used_gb,
            Metric::CoresUsed => m.cores_used,
            Metric::NetworkUsed => m.network_used_gbps,
        }
    }

    /// The system property this metric affects (Table 2, third column).
    pub fn category(&self) -> MetricCategory {
        match self {
            Metric::TotalDataRead | Metric::NumberOfTasks | Metric::BytesPerSecond => {
                MetricCategory::Throughput
            }
            Metric::BytesPerCpuTime => MetricCategory::CpuProcessing,
            Metric::CpuUtilization | Metric::AverageRunningContainers => {
                MetricCategory::UtilizationLevel
            }
            Metric::AverageTaskLatency | Metric::QueuedContainers | Metric::QueueLatencyP99 => {
                MetricCategory::Latency
            }
            Metric::PowerDraw
            | Metric::SsdUsed
            | Metric::RamUsed
            | Metric::CoresUsed
            | Metric::NetworkUsed => MetricCategory::ResourceUsage,
        }
    }

    /// Human-readable name as used in the paper's tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::TotalDataRead => "Total Data Read",
            Metric::NumberOfTasks => "Number of Tasks",
            Metric::BytesPerSecond => "Bytes per Second",
            Metric::BytesPerCpuTime => "Bytes per CPU Time",
            Metric::CpuUtilization => "CPU Utilization",
            Metric::AverageRunningContainers => "Average Running Containers",
            Metric::AverageTaskLatency => "Average Task Latency",
            Metric::QueuedContainers => "Queued Containers",
            Metric::QueueLatencyP99 => "Queue Latency p99",
            Metric::PowerDraw => "Power Draw",
            Metric::SsdUsed => "SSD Used",
            Metric::RamUsed => "RAM Used",
            Metric::CoresUsed => "Cores Used",
            Metric::NetworkUsed => "Network Used",
        }
    }

    /// Measurement unit for reporting.
    pub fn unit(&self) -> &'static str {
        match self {
            Metric::TotalDataRead => "GB/h",
            Metric::NumberOfTasks => "tasks/h",
            Metric::BytesPerSecond => "B/s",
            Metric::BytesPerCpuTime => "B/CPU-s",
            Metric::CpuUtilization => "%",
            Metric::AverageRunningContainers => "containers",
            Metric::AverageTaskLatency => "s",
            Metric::QueuedContainers => "containers",
            Metric::QueueLatencyP99 => "ms",
            Metric::PowerDraw => "W",
            Metric::SsdUsed => "GB",
            Metric::RamUsed => "GB",
            Metric::CoresUsed => "cores",
            Metric::NetworkUsed => "Gbit/s",
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name(), self.unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metrics_extract_without_panic() {
        let m = MetricValues {
            total_data_read_gb: 1.0,
            tasks_finished: 2.0,
            task_exec_time_s: 3.0,
            cpu_time_s: 4.0,
            cpu_utilization: 5.0,
            avg_running_containers: 6.0,
            avg_task_latency_s: 7.0,
            queued_containers: 8.0,
            queue_latency_p99_ms: 9.0,
            power_draw_w: 10.0,
            ssd_used_gb: 11.0,
            ram_used_gb: 12.0,
            cores_used: 13.0,
            network_used_gbps: 14.0,
        };
        for metric in Metric::ALL {
            assert!(metric.value(&m).is_finite(), "{metric}");
            assert!(!metric.name().is_empty());
            assert!(!metric.unit().is_empty());
        }
        assert_eq!(Metric::CpuUtilization.value(&m), 5.0);
        assert_eq!(Metric::NumberOfTasks.value(&m), 2.0);
    }

    #[test]
    fn table2_categories() {
        assert_eq!(
            Metric::TotalDataRead.category(),
            MetricCategory::Throughput
        );
        assert_eq!(
            Metric::BytesPerCpuTime.category(),
            MetricCategory::CpuProcessing
        );
        assert_eq!(
            Metric::CpuUtilization.category(),
            MetricCategory::UtilizationLevel
        );
        assert_eq!(
            Metric::AverageRunningContainers.category(),
            MetricCategory::UtilizationLevel
        );
        assert_eq!(Metric::PowerDraw.category(), MetricCategory::ResourceUsage);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(
            Metric::CpuUtilization.to_string(),
            "CPU Utilization (%)"
        );
    }

    #[test]
    fn all_list_is_exhaustive_and_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = Metric::ALL.iter().collect();
        assert_eq!(set.len(), Metric::ALL.len());
    }

    #[test]
    fn index_matches_all_order() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i, "{m} out of position");
        }
    }

    #[test]
    fn row_of_matches_value_per_metric() {
        let m = MetricValues {
            total_data_read_gb: 1.0,
            tasks_finished: 2.0,
            task_exec_time_s: 3.0,
            cpu_time_s: 4.0,
            cpu_utilization: 5.0,
            avg_running_containers: 6.0,
            avg_task_latency_s: 7.0,
            queued_containers: 8.0,
            queue_latency_p99_ms: 9.0,
            power_draw_w: 10.0,
            ssd_used_gb: 11.0,
            ram_used_gb: 12.0,
            cores_used: 13.0,
            network_used_gbps: 14.0,
        };
        let row = Metric::row_of(&m);
        for metric in Metric::ALL {
            assert_eq!(row[metric.index()], metric.value(&m), "{metric}");
        }
    }
}
