//! Aggregation kernels and scatter-view extraction.
//!
//! §5.2.1: "Each small dot corresponds to an observation aggregated at the
//! daily level for a machine" — model fitting happens over daily
//! machine-level aggregates, grouped by `(SC, SKU)`. The scatter view of
//! Figure 8 is the hourly disaggregated variant. Both are produced here,
//! along with the fleet series (Figure 1) and per-group utilization
//! (Figure 2) views the Performance Monitor serves.
//!
//! All four roll-ups are **fused single-pass kernels** over the store's
//! sealed runs plus delta: each group is one contiguous slice per side,
//! k-way merged on the fly, so streaming appends never force a rebuild
//! before aggregation. Counts, sums, and distinct-machine membership
//! accumulate in flat arrays indexed by *merged* dense machine ids (each
//! side's dense ids remapped through a shared table — no `BTreeMap` entry
//! lookup per record).
//!
//! The month-scale variants — [`daily_group_aggregates_window`] and
//! [`hourly_fleet_series_window`] — take an `[start, end)` hour window
//! and consult only the runs whose recorded hour bounds intersect it:
//! against a long retained history, a one-day question touches the one
//! or two segments holding that day and leaves the rest on disk.
//!
//! The per-group kernels parallelize by **work stealing**: scoped worker
//! threads pull group indexes off a shared atomic cursor, so one giant
//! group occupies one worker while the rest drain the remaining groups —
//! the skew case a contiguous count-based partition serializes. Results
//! land in per-group slots, so output order is identical to a serial loop
//! for any worker count and any interleaving. The pre-columnar
//! implementations survive in [`reference`] as the executable
//! specification and benchmark baseline.

// kea-lint: allow-file(index-in-library) — dense aggregation kernels: rows
// come from the store's own CSR offset tables and every bucket index is a
// dense id interned/remapped by the same index (bounds pinned by store
// tests).

use crate::metric::Metric;
use crate::record::{GroupKey, MachineHourRecord, MachineId};
use crate::store::{merge_dedup, remap_into, ColumnIndex, TelemetryStore};
use kea_stats::Summary;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One daily aggregate for one machine: per-metric means over the hours
/// observed that day.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyAggregate {
    /// The machine.
    pub machine: MachineId,
    /// Its group.
    pub group: GroupKey,
    /// Day index.
    pub day: u64,
    /// Hours that contributed.
    pub hours_observed: u32,
    /// Mean of each metric over the contributing hours, indexed in
    /// [`Metric::ALL`] order.
    means: [f64; Metric::ALL.len()],
}

impl DailyAggregate {
    /// The daily mean of `metric` — a constant-time array read via
    /// [`Metric::index`].
    pub fn mean(&self, metric: Metric) -> f64 {
        self.means
            .get(metric.index())
            .copied()
            .unwrap_or(f64::NAN)
    }
}

/// Per-group fleet composition and utilization (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupUtilization {
    /// The machine group.
    pub group: GroupKey,
    /// Number of distinct machines observed in the group.
    pub machines: usize,
    /// Mean CPU utilization over all machine-hours, percent.
    pub mean_cpu_utilization: f64,
    /// Mean running containers.
    pub mean_running_containers: f64,
}

/// Runs `work(scratch, group_index)` over every group in `0..n_groups`,
/// work-stealing across scoped threads: each worker owns one `scratch`
/// (built by `make_scratch`, reused across the groups it claims) and
/// pulls the next unclaimed group off a shared atomic cursor. One
/// pathologically large group therefore pins exactly one worker while
/// the others drain the rest — a contiguous count-based split would
/// serialize everything sharing its partition. Per-group results land in
/// per-group slots and are concatenated in ascending group order, so the
/// output is identical to a serial loop for any worker count and any
/// steal interleaving.
pub(crate) fn run_group_partitions<T: Send, S>(
    n_groups: usize,
    make_scratch: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> Vec<T> + Sync,
) -> Vec<T> {
    if n_groups == 0 {
        return Vec::new();
    }
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(n_groups);
    if n_workers <= 1 {
        let mut scratch = make_scratch();
        return (0..n_groups)
            .flat_map(|gi| work(&mut scratch, gi))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<T>>> = Vec::new();
    slots.resize_with(n_groups, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = make_scratch();
                    let mut claimed: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let gi = cursor.fetch_add(1, Ordering::Relaxed);
                        if gi >= n_groups {
                            break;
                        }
                        claimed.push((gi, work(&mut scratch, gi)));
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(claimed) => {
                    for (gi, result) in claimed {
                        slots[gi] = Some(result);
                    }
                }
                // Surface worker panics (e.g. assertion failures in
                // kernels under test) instead of swallowing them.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().flatten().flatten().collect()
}

/// One group's presence across every side of the store: its row range in
/// each side's sorted order (empty when absent from that side), plus —
/// when the kernel is hour-windowed — the range already narrowed to the
/// window (the group slice is hour-major, so narrowing is two binary
/// searches per side).
struct MergedGroup {
    group: GroupKey,
    rows: Vec<Range<usize>>,
}

/// The merged group list across `sides`, ascending by group key, with
/// per-side row ranges narrowed to `window` when given.
fn merged_groups(sides: &[&ColumnIndex], window: Option<(u64, u64)>) -> Vec<MergedGroup> {
    let keys = sides
        .iter()
        .fold(Vec::new(), |acc, s| merge_dedup(&acc, &s.groups));
    keys.into_iter()
        .map(|group| MergedGroup {
            group,
            rows: sides
                .iter()
                .map(|s| {
                    let full = s.group_range(group);
                    match window {
                        None => full,
                        Some((start, end)) => {
                            let slice = &s.sorted[full.clone()];
                            let lo = full.start + slice.partition_point(|r| r.hour < start);
                            let hi = full.start + slice.partition_point(|r| r.hour < end);
                            lo..hi
                        }
                    }
                })
                .collect(),
        })
        .filter(|g| g.rows.iter().any(|r| !r.is_empty()))
        .collect()
}

/// The merged dense machine-id space across every side: the combined
/// distinct-machine list plus one remap table per side translating that
/// side's dense ids into merged ids.
struct MergedMachines {
    ids: Vec<MachineId>,
    maps: Vec<Vec<u32>>,
}

fn merged_machines(sides: &[&ColumnIndex]) -> MergedMachines {
    let ids = sides
        .iter()
        .fold(Vec::new(), |acc, s| merge_dedup(&acc, &s.machines));
    let maps = sides.iter().map(|s| remap_into(&s.machines, &ids)).collect();
    MergedMachines { ids, maps }
}

/// K-cursor merge over one group's rows across every side, ordered by
/// `(hour, machine)` (each side is already hour-major within a group;
/// the earliest side wins ties, so passing sides oldest-run-first keeps
/// arrival order). Yields each record with its *merged* dense machine
/// id.
fn for_each_merged_row(
    sides: &[&ColumnIndex],
    machines: &MergedMachines,
    g: &MergedGroup,
    mut visit: impl FnMut(&MachineHourRecord, usize),
) {
    let mut cursors: Vec<Range<usize>> = g.rows.clone();
    loop {
        let mut best: Option<(usize, (u64, MachineId))> = None;
        for (i, c) in cursors.iter().enumerate() {
            if c.start < c.end {
                let r = &sides[i].sorted[c.start];
                let k = (r.hour, r.machine);
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let row = cursors[i].start;
        cursors[i].start += 1;
        let dense = machines.maps[i][sides[i].machine_dense[row] as usize] as usize;
        visit(&sides[i].sorted[row], dense);
    }
}

/// Per-worker scratch of the daily roll-up kernel: a count and a
/// metric-row sum per merged dense machine id, plus the ids touched this
/// day (so a day boundary resets O(touched), not O(n_machines)).
struct DailyScratch {
    counts: Vec<u32>,
    sums: Vec<[f64; Metric::ALL.len()]>,
    touched: Vec<u32>,
}

/// Rolls the store up into per-machine, per-day aggregates (the training
/// rows of §5.2.1), sorted by `(group, machine, day)`.
///
/// Kernel shape: within a group every side's slice is hour-major, so the
/// k-cursor merge delivers days as contiguous runs; each day's rows
/// accumulate into flat `(count, sums)` buckets indexed by merged dense
/// machine id, and only touched buckets are drained and reset at the day
/// boundary. Groups are claimed by work-stealing workers.
pub fn daily_group_aggregates(store: &TelemetryStore) -> Vec<DailyAggregate> {
    daily_core(&store.sides(), None)
}

/// [`daily_group_aggregates`] restricted to hours `[start_hour,
/// end_hour)`. Sealed runs whose recorded hour bounds miss the window
/// are skipped *without decoding their segments*, so a day-scale
/// question against a month-scale history touches only the sides that
/// can answer it.
pub fn daily_group_aggregates_window(
    store: &TelemetryStore,
    start_hour: u64,
    end_hour: u64,
) -> Vec<DailyAggregate> {
    daily_core(
        &store.window_sides(start_hour, end_hour),
        Some((start_hour, end_hour)),
    )
}

fn daily_core(sides: &[&ColumnIndex], window: Option<(u64, u64)>) -> Vec<DailyAggregate> {
    let machines = merged_machines(sides);
    let groups = merged_groups(sides, window);
    let n_machines = machines.ids.len();
    run_group_partitions(
        groups.len(),
        || DailyScratch {
            counts: vec![0u32; n_machines],
            sums: vec![[0.0f64; Metric::ALL.len()]; n_machines],
            touched: Vec::new(),
        },
        |scratch, gi| {
            let g = &groups[gi];
            let mut out: Vec<DailyAggregate> = Vec::new();
            let mut current_day = u64::MAX; // no day open yet
            for_each_merged_row(sides, &machines, g, |r, dense| {
                let day = r.hour / 24;
                if day != current_day {
                    if current_day != u64::MAX {
                        drain_day(g.group, current_day, &machines.ids, scratch, &mut out);
                    }
                    current_day = day;
                }
                if scratch.counts[dense] == 0 {
                    scratch.touched.push(dense as u32);
                }
                scratch.counts[dense] += 1;
                let row_values = Metric::row_of(&r.metrics);
                for (acc, v) in scratch.sums[dense].iter_mut().zip(row_values) {
                    *acc += v;
                }
            });
            if current_day != u64::MAX {
                drain_day(g.group, current_day, &machines.ids, scratch, &mut out);
            }
            // Day-major production order → the documented (machine, day)
            // order within the group.
            out.sort_unstable_by_key(|a| (a.machine, a.day));
            out
        },
    )
}

/// Drains every touched daily bucket into `out` and resets the scratch.
fn drain_day(
    group: GroupKey,
    day: u64,
    machine_ids: &[MachineId],
    scratch: &mut DailyScratch,
    out: &mut Vec<DailyAggregate>,
) {
    for &dense in scratch.touched.iter() {
        let dense = dense as usize;
        let count = scratch.counts[dense];
        let mut means = scratch.sums[dense];
        for v in &mut means {
            *v /= count as f64;
        }
        out.push(DailyAggregate {
            machine: machine_ids[dense],
            group,
            day,
            hours_observed: count,
            means,
        });
        scratch.counts[dense] = 0;
        scratch.sums[dense] = [0.0; Metric::ALL.len()];
    }
    scratch.touched.clear();
}

/// Distribution summary of one metric over all machine-hours of one group
/// — each side contributes one contiguous metric column slice, and the
/// slices are concatenated before the summary ([`Summary::of`] sorts a
/// copy either way).
///
/// Returns `None` when the group has no records.
pub fn group_summary(store: &TelemetryStore, group: GroupKey, metric: Metric) -> Option<Summary> {
    let sides = store.sides();
    let slices: Vec<&[f64]> = sides
        .iter()
        .map(|s| s.group_column(group, metric))
        .collect();
    match slices.as_slice() {
        [] => None,
        [one] => Summary::of(one).ok(),
        many => {
            let mut values = Vec::with_capacity(many.iter().map(|s| s.len()).sum());
            for s in many {
                values.extend_from_slice(s);
            }
            Summary::of(&values).ok()
        }
    }
}

/// Fleet-wide mean of `metric` per hour — the Figure 1 series, with one
/// `(hour, mean)` point for every hour of the store's span (0.0 for hours
/// no machine reported). Empty when the store is empty.
///
/// Kernel shape: each side's hour CSR index yields that hour's rows
/// directly; one distinct-hour cursor per side walks the combined span,
/// and the mean is a gather-sum over the metric columns — no per-record
/// map lookups and no predicate scans.
pub fn hourly_fleet_series(store: &TelemetryStore, metric: Metric) -> Vec<(u64, f64)> {
    let Some((start, end)) = store.hour_span() else {
        return Vec::new();
    };
    hourly_core(&store.sides(), metric, start, end - 1)
}

/// [`hourly_fleet_series`] restricted to hours `[start_hour, end_hour)`
/// — one point per hour of the window's intersection with the store's
/// span (hours inside the intersection that no machine reported are
/// zero-filled, exactly as in the full series). Sealed runs whose
/// recorded hour bounds miss the window are skipped *without decoding
/// their segments*: this is the query shape the multi-segment layout
/// exists for, a one-day dashboard panel against a month of retained
/// fleet history.
pub fn hourly_fleet_series_window(
    store: &TelemetryStore,
    metric: Metric,
    start_hour: u64,
    end_hour: u64,
) -> Vec<(u64, f64)> {
    // `hour_span` reads the recorded run bounds — no segment decodes.
    let Some((lo, hi)) = store.hour_span() else {
        return Vec::new();
    };
    if end_hour <= start_hour {
        return Vec::new();
    }
    // Guarded above: end_hour >= 1 and hi >= 1, so neither `- 1` wraps.
    let start = lo.max(start_hour);
    let end_inclusive = (hi - 1).min(end_hour - 1);
    if end_inclusive < start {
        return Vec::new();
    }
    hourly_core(
        &store.window_sides(start_hour, end_hour),
        metric,
        start,
        end_inclusive,
    )
}

fn hourly_core(
    sides: &[&ColumnIndex],
    metric: Metric,
    start: u64,
    end_inclusive: u64,
) -> Vec<(u64, f64)> {
    let columns: Vec<&[f64]> = sides.iter().map(|s| &s.columns[metric.index()][..]).collect();
    // Distinct-hour cursor per side, positioned at the span start.
    let mut cursors: Vec<usize> = sides
        .iter()
        .map(|s| s.hours.partition_point(|&h| h < start))
        .collect();
    let mut out = Vec::with_capacity((end_inclusive - start + 1) as usize);
    for hour in start..=end_inclusive {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for ((s, p), column) in sides.iter().zip(cursors.iter_mut()).zip(&columns) {
            if s.hours.get(*p) == Some(&hour) {
                let positions = s.hour_offsets[*p]..s.hour_offsets[*p + 1];
                n += positions.len();
                sum += s.hour_order[positions]
                    .iter()
                    .map(|&row| column[row])
                    .sum::<f64>();
                *p += 1;
            }
        }
        out.push((hour, if n == 0 { 0.0 } else { sum / n as f64 }));
    }
    out
}

/// Machine counts and mean utilization per group — Figure 2's two panels,
/// sorted by group key (i.e. hardware generation). Empty when the store
/// is empty.
///
/// Kernel shape: per group, the CPU and container means are contiguous
/// column-slice sums over every side, and the distinct-machine count is a
/// seen-bitmap over merged dense machine ids (reset via the touched
/// list). Groups are claimed by work-stealing workers.
pub fn group_utilization(store: &TelemetryStore) -> Vec<GroupUtilization> {
    let sides = store.sides();
    let machines = merged_machines(&sides);
    let groups = merged_groups(&sides, None);
    let n_machines = machines.ids.len();
    let cpus: Vec<&[f64]> = sides
        .iter()
        .map(|s| &s.columns[Metric::CpuUtilization.index()][..])
        .collect();
    let containers: Vec<&[f64]> = sides
        .iter()
        .map(|s| &s.columns[Metric::AverageRunningContainers.index()][..])
        .collect();
    // With a single side the merged machine space IS that side's, so the
    // remap is the identity — skip the indirection on the hot sealed
    // path.
    let identity = sides.len() == 1;
    run_group_partitions(
        groups.len(),
        || (vec![false; n_machines], Vec::<u32>::new()),
        |(seen, touched), gi| {
            let g = &groups[gi];
            let n: usize = g.rows.iter().map(|r| r.len()).sum();
            let mut cpu_sum = 0.0f64;
            let mut containers_sum = 0.0f64;
            for (i, side) in sides.iter().enumerate() {
                let rows = g.rows[i].clone();
                for row in rows.clone() {
                    let raw = side.machine_dense[row] as usize;
                    let dense = if identity {
                        raw
                    } else {
                        machines.maps[i][raw] as usize
                    };
                    if !seen[dense] {
                        seen[dense] = true;
                        touched.push(dense as u32);
                    }
                }
                cpu_sum += cpus[i][rows.clone()].iter().sum::<f64>();
                containers_sum += containers[i][rows].iter().sum::<f64>();
            }
            let result = GroupUtilization {
                group: g.group,
                machines: touched.len(),
                mean_cpu_utilization: cpu_sum / n as f64,
                mean_running_containers: containers_sum / n as f64,
            };
            for &dense in touched.iter() {
                seen[dense as usize] = false;
            }
            touched.clear();
            vec![result]
        },
    )
}

/// One point of a scatter view (Figure 8): an `(x, y)` metric pair for one
/// machine-hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// The machine observed.
    pub machine: MachineId,
    /// Hour of observation.
    pub hour: u64,
    /// Value of the x-axis metric.
    pub x: f64,
    /// Value of the y-axis metric.
    pub y: f64,
}

/// Extracts the scatter view of `(x_metric, y_metric)` for one group —
/// "the scatter view depicts the data in a disaggregated way with each
/// point corresponding to one observation for a machine during one hour"
/// (§4.1). Points come out in `(hour, machine)` order (the merged
/// by-group view order).
pub fn scatter(
    store: &TelemetryStore,
    group: GroupKey,
    x_metric: Metric,
    y_metric: Metric,
) -> Vec<ScatterPoint> {
    store
        .by_group(group)
        .map(|r| ScatterPoint {
            machine: r.machine,
            hour: r.hour,
            x: x_metric.value(&r.metrics),
            y: y_metric.value(&r.metrics),
        })
        .collect()
}

/// Pre-columnar roll-ups over the flat [`reference
/// store`](crate::store::reference::TelemetryStore), preserved as the
/// executable specification: per-record `BTreeMap` entry lookups for the
/// bucketed views and full predicate scans for the filtered ones. The
/// agreement suite pins these against the multi-run kernels to 1e-9 at
/// every intermediate state of interleaved mutate/query sequences; the
/// `telemetry_scan` and `telemetry_stream` benches report the speedup.
pub mod reference {
    use super::{DailyAggregate, GroupUtilization};
    use crate::metric::Metric;
    use crate::record::{GroupKey, MachineId};
    use crate::store::reference::TelemetryStore;
    use kea_stats::Summary;
    use std::collections::BTreeMap;

    /// Per-machine, per-day aggregates via a `(group, machine, day)` →
    /// `(count, sums)` tree with one entry lookup per record.
    pub fn daily_group_aggregates(store: &TelemetryStore) -> Vec<DailyAggregate> {
        daily_group_aggregates_window(store, 0, u64::MAX)
    }

    /// The windowed variant: the same tree roll-up over records whose
    /// hour falls in `[start_hour, end_hour)` — a predicate per record,
    /// exactly what the pruned kernel must agree with.
    pub fn daily_group_aggregates_window(
        store: &TelemetryStore,
        start_hour: u64,
        end_hour: u64,
    ) -> Vec<DailyAggregate> {
        let mut acc: BTreeMap<(GroupKey, MachineId, u64), (u32, [f64; Metric::ALL.len()])> =
            BTreeMap::new();
        for r in store.iter() {
            if r.hour < start_hour || r.hour >= end_hour {
                continue;
            }
            let entry = acc
                .entry((r.group, r.machine, r.day()))
                .or_insert((0, [0.0; Metric::ALL.len()]));
            entry.0 += 1;
            for (i, metric) in Metric::ALL.iter().enumerate() {
                entry.1[i] += metric.value(&r.metrics);
            }
        }
        acc.into_iter()
            .map(|((group, machine, day), (count, sums))| {
                let mut means = sums;
                for v in &mut means {
                    *v /= count as f64;
                }
                DailyAggregate {
                    machine,
                    group,
                    day,
                    hours_observed: count,
                    means,
                }
            })
            .collect()
    }

    /// Distribution summary of one metric for one group via a full
    /// predicate scan and a collected value vector.
    pub fn group_summary(
        store: &TelemetryStore,
        group: GroupKey,
        metric: Metric,
    ) -> Option<Summary> {
        let values: Vec<f64> = store
            .by_group(group)
            .map(|r| metric.value(&r.metrics))
            .collect();
        Summary::of(&values).ok()
    }

    /// Fleet-wide hourly mean series via an hour-keyed `BTreeMap` with
    /// one lookup per record.
    pub fn hourly_fleet_series(store: &TelemetryStore, metric: Metric) -> Vec<(u64, f64)> {
        hourly_fleet_series_window(store, metric, 0, u64::MAX)
    }

    /// The windowed variant: the series over the intersection of the
    /// store's span with `[start_hour, end_hour)`.
    pub fn hourly_fleet_series_window(
        store: &TelemetryStore,
        metric: Metric,
        start_hour: u64,
        end_hour: u64,
    ) -> Vec<(u64, f64)> {
        let Some((lo, hi)) = store.hour_span() else {
            return Vec::new();
        };
        let start = lo.max(start_hour);
        let end = hi.min(end_hour);
        if end <= start {
            return Vec::new();
        }
        let mut sums: BTreeMap<u64, (f64, u64)> = (start..end).map(|h| (h, (0.0, 0))).collect();
        for rec in store.iter() {
            if let Some(e) = sums.get_mut(&rec.hour) {
                e.0 += metric.value(&rec.metrics);
                e.1 += 1;
            }
        }
        sums.into_iter()
            .map(|(h, (sum, n))| (h, if n == 0 { 0.0 } else { sum / n as f64 }))
            .collect()
    }

    /// Per-group machine counts and means via a group-keyed `BTreeMap`
    /// holding a `BTreeSet` of machine ids per group.
    pub fn group_utilization(store: &TelemetryStore) -> Vec<GroupUtilization> {
        let mut acc: BTreeMap<GroupKey, (std::collections::BTreeSet<u32>, f64, f64, u64)> =
            BTreeMap::new();
        for rec in store.iter() {
            let e = acc.entry(rec.group).or_default();
            e.0.insert(rec.machine.0);
            e.1 += rec.metrics.cpu_utilization;
            e.2 += rec.metrics.avg_running_containers;
            e.3 += 1;
        }
        acc.into_iter()
            .map(|(group, (machines, util, containers, n))| GroupUtilization {
                group,
                machines: machines.len(),
                mean_cpu_utilization: util / n as f64,
                mean_running_containers: containers / n as f64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MachineHourRecord, MetricValues, ScId, SkuId};

    fn store_with_two_days() -> TelemetryStore {
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(1), ScId(0));
        for hour in 0..48u64 {
            store.push(MachineHourRecord {
                machine: MachineId(7),
                group,
                hour,
                metrics: MetricValues {
                    cpu_utilization: if hour < 24 { 50.0 } else { 70.0 },
                    tasks_finished: hour as f64,
                    ..Default::default()
                },
            });
        }
        store
    }

    #[test]
    fn daily_aggregates_split_by_day() {
        let store = store_with_two_days();
        let daily = daily_group_aggregates(&store);
        assert_eq!(daily.len(), 2);
        assert_eq!(daily[0].day, 0);
        assert_eq!(daily[1].day, 1);
        assert_eq!(daily[0].hours_observed, 24);
        assert_eq!(daily[0].mean(Metric::CpuUtilization), 50.0);
        assert_eq!(daily[1].mean(Metric::CpuUtilization), 70.0);
        // Mean of 0..24 = 11.5; of 24..48 = 35.5.
        assert!((daily[0].mean(Metric::NumberOfTasks) - 11.5).abs() < 1e-12);
        assert!((daily[1].mean(Metric::NumberOfTasks) - 35.5).abs() < 1e-12);
    }

    #[test]
    fn daily_aggregates_separate_machines_and_groups() {
        let mut store = TelemetryStore::new();
        for (m, sku) in [(1u32, 0u16), (2, 0), (3, 1)] {
            store.push(MachineHourRecord {
                machine: MachineId(m),
                group: GroupKey::new(SkuId(sku), ScId(0)),
                hour: 0,
                metrics: MetricValues::default(),
            });
        }
        let daily = daily_group_aggregates(&store);
        assert_eq!(daily.len(), 3);
        // Sorted by (group, machine, day): sku 0 machines first.
        assert_eq!(daily[0].machine, MachineId(1));
        assert_eq!(daily[2].group.sku, SkuId(1));
    }

    #[test]
    fn daily_aggregates_sorted_by_group_machine_day() {
        // Machines interleaved across days and groups, inserted shuffled.
        let mut store = TelemetryStore::new();
        for (m, sku, hour) in [
            (2u32, 1u16, 30u64),
            (1, 0, 0),
            (2, 1, 2),
            (1, 0, 26),
            (3, 0, 1),
            (3, 0, 49),
        ] {
            store.push(MachineHourRecord {
                machine: MachineId(m),
                group: GroupKey::new(SkuId(sku), ScId(0)),
                hour,
                metrics: MetricValues::default(),
            });
        }
        let daily = daily_group_aggregates(&store);
        let keys: Vec<_> = daily.iter().map(|a| (a.group, a.machine, a.day)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "output must be (group, machine, day)-sorted");
        assert_eq!(daily.len(), 6);
    }

    #[test]
    fn daily_aggregates_span_runs_and_delta() {
        // A machine's day split across a sealed run and the delta must
        // roll up into ONE daily row covering both sides.
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(0), ScId(0));
        for hour in 0..12u64 {
            store.push(MachineHourRecord {
                machine: MachineId(1),
                group,
                hour,
                metrics: MetricValues {
                    tasks_finished: 10.0,
                    ..Default::default()
                },
            });
        }
        store.seal();
        for hour in 12..24u64 {
            store.push(MachineHourRecord {
                machine: MachineId(1),
                group,
                hour,
                metrics: MetricValues {
                    tasks_finished: 30.0,
                    ..Default::default()
                },
            });
        }
        assert!(!store.is_sealed(), "day must straddle run and delta");
        let daily = daily_group_aggregates(&store);
        assert_eq!(daily.len(), 1);
        assert_eq!(daily[0].hours_observed, 24);
        assert!((daily[0].mean(Metric::NumberOfTasks) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_daily_aggregates_match_reference() {
        // Three sealed runs over disjoint day ranges plus a delta; every
        // window shape must agree with the reference predicate scan.
        let mut store = TelemetryStore::new();
        let mut flat = crate::store::reference::TelemetryStore::new();
        let mut push = |store: &mut TelemetryStore, m: u32, sku: u16, hour: u64, cpu: f64| {
            let r = MachineHourRecord {
                machine: MachineId(m),
                group: GroupKey::new(SkuId(sku), ScId(0)),
                hour,
                metrics: MetricValues {
                    cpu_utilization: cpu,
                    tasks_finished: hour as f64,
                    ..Default::default()
                },
            };
            store.push(r);
            flat.push(r);
        };
        for (batch, base) in [(0u64, 0u64), (1, 100), (2, 200)] {
            for m in 0..6u32 {
                for h in 0..30u64 {
                    push(&mut store, m, (m % 2) as u16, base + h, (batch + m as u64) as f64);
                }
            }
            store.seal();
        }
        push(&mut store, 9, 1, 250, 5.0);
        for (s, e) in [(0u64, 24u64), (90, 130), (200, 1000), (240, 260), (50, 60), (0, u64::MAX)] {
            let pruned = daily_group_aggregates_window(&store, s, e);
            let spec = reference::daily_group_aggregates_window(&flat, s, e);
            assert_eq!(pruned.len(), spec.len(), "window [{s}, {e})");
            for (a, b) in pruned.iter().zip(&spec) {
                assert_eq!((a.group, a.machine, a.day), (b.group, b.machine, b.day));
                assert_eq!(a.hours_observed, b.hours_observed);
                for m in Metric::ALL {
                    assert!((a.mean(m) - b.mean(m)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn group_summary_reports_distribution() {
        let store = store_with_two_days();
        let group = GroupKey::new(SkuId(1), ScId(0));
        let s = group_summary(&store, group, Metric::CpuUtilization).unwrap();
        assert_eq!(s.count, 48);
        assert!((s.mean - 60.0).abs() < 1e-12);
        assert_eq!(s.min, 50.0);
        assert_eq!(s.max, 70.0);
        // Missing group yields None.
        assert!(group_summary(&store, GroupKey::new(SkuId(9), ScId(0)), Metric::CpuUtilization)
            .is_none());
    }

    #[test]
    fn scatter_extracts_pairs() {
        let store = store_with_two_days();
        let group = GroupKey::new(SkuId(1), ScId(0));
        let pts = scatter(&store, group, Metric::CpuUtilization, Metric::NumberOfTasks);
        assert_eq!(pts.len(), 48);
        assert_eq!(pts[0].x, 50.0);
        assert_eq!(pts[0].y, 0.0);
        assert_eq!(pts[47].x, 70.0);
        assert_eq!(pts[47].y, 47.0);
    }

    #[test]
    fn hourly_series_fills_gaps_with_zero() {
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(0), ScId(0));
        for (m, hour, cpu) in [(1u32, 3u64, 10.0), (2, 3, 30.0), (1, 6, 50.0)] {
            store.push(MachineHourRecord {
                machine: MachineId(m),
                group,
                hour,
                metrics: MetricValues {
                    cpu_utilization: cpu,
                    ..Default::default()
                },
            });
        }
        let series = hourly_fleet_series(&store, Metric::CpuUtilization);
        assert_eq!(
            series,
            vec![(3, 20.0), (4, 0.0), (5, 0.0), (6, 50.0)],
            "span-covering series with zero-filled gaps"
        );
        assert!(hourly_fleet_series(&TelemetryStore::new(), Metric::CpuUtilization).is_empty());
    }

    #[test]
    fn hourly_series_merges_run_and_delta_hours() {
        // Run covers hours {2, 5}; delta covers {4, 5, 8}. The merged
        // series spans 2..=8 with hour 5 averaging across both sides.
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(0), ScId(0));
        let push = |store: &mut TelemetryStore, hour: u64, cpu: f64| {
            store.push(MachineHourRecord {
                machine: MachineId(hour as u32), // distinct machines
                group,
                hour,
                metrics: MetricValues {
                    cpu_utilization: cpu,
                    ..Default::default()
                },
            });
        };
        push(&mut store, 2, 10.0);
        push(&mut store, 5, 20.0);
        store.seal();
        push(&mut store, 4, 40.0);
        push(&mut store, 8, 80.0);
        store.push(MachineHourRecord {
            machine: MachineId(99),
            group,
            hour: 5,
            metrics: MetricValues {
                cpu_utilization: 60.0,
                ..Default::default()
            },
        });
        assert!(!store.is_sealed());
        let series = hourly_fleet_series(&store, Metric::CpuUtilization);
        assert_eq!(
            series,
            vec![
                (2, 10.0),
                (3, 0.0),
                (4, 40.0),
                (5, 40.0), // (20 + 60) / 2 across run and delta
                (6, 0.0),
                (7, 0.0),
                (8, 80.0),
            ]
        );
    }

    #[test]
    fn windowed_hourly_series_clamps_and_prunes() {
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(0), ScId(0));
        let push = |store: &mut TelemetryStore, hour: u64, cpu: f64| {
            store.push(MachineHourRecord {
                machine: MachineId(1),
                group,
                hour,
                metrics: MetricValues {
                    cpu_utilization: cpu,
                    ..Default::default()
                },
            });
        };
        // Elder run strictly larger so the runs stay separate.
        for h in 0..10u64 {
            push(&mut store, h, 10.0);
        }
        store.seal();
        for h in 100..105u64 {
            push(&mut store, h, 50.0);
        }
        store.seal();
        // Window straddling the second run's start: in-span hours no
        // machine reported are zero-filled, as in the full series.
        assert_eq!(
            hourly_fleet_series_window(&store, Metric::CpuUtilization, 98, 103),
            vec![(98, 0.0), (99, 0.0), (100, 50.0), (101, 50.0), (102, 50.0)]
        );
        // Window in the dead zone between runs: inside the store's span,
        // so fully zero-filled — and served without consulting any run.
        let dead = hourly_fleet_series_window(&store, Metric::CpuUtilization, 40, 60);
        assert_eq!(dead.len(), 20);
        assert!(dead.iter().all(|&(_, v)| v == 0.0));
        assert_eq!(dead[0].0, 40);
        // Degenerate and out-of-span windows.
        assert!(hourly_fleet_series_window(&store, Metric::CpuUtilization, 5, 5).is_empty());
        assert!(hourly_fleet_series_window(&store, Metric::CpuUtilization, 500, 600).is_empty());
        // Unwindowed agreement on the full span.
        let full = hourly_fleet_series(&store, Metric::CpuUtilization);
        assert_eq!(full.len(), 105);
        assert_eq!(full[0], (0, 10.0));
        assert_eq!(full[104], (104, 50.0));
    }

    #[test]
    fn group_utilization_counts_distinct_machines() {
        let mut store = TelemetryStore::new();
        for m in 0..4u32 {
            for h in 0..10u64 {
                let sku = if m < 2 { 0 } else { 1 };
                store.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(sku), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        cpu_utilization: 50.0 + sku as f64 * 10.0 + h as f64,
                        avg_running_containers: 5.0 + sku as f64,
                        ..Default::default()
                    },
                });
            }
        }
        let groups = group_utilization(&store);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].machines, 2);
        assert_eq!(groups[1].machines, 2);
        assert!(groups[1].mean_cpu_utilization > groups[0].mean_cpu_utilization);
        assert!((groups[0].mean_running_containers - 5.0).abs() < 1e-12);
        assert!(group_utilization(&TelemetryStore::new()).is_empty());
    }

    #[test]
    fn group_utilization_dedups_machines_across_run_and_delta() {
        // The same machine observed in a run AND the delta must count
        // once; a delta-only machine extends the count.
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(0), ScId(0));
        store.push(MachineHourRecord {
            machine: MachineId(1),
            group,
            hour: 0,
            metrics: MetricValues {
                cpu_utilization: 10.0,
                ..Default::default()
            },
        });
        store.seal();
        for (m, cpu) in [(1u32, 30.0), (2, 50.0)] {
            store.push(MachineHourRecord {
                machine: MachineId(m),
                group,
                hour: 1,
                metrics: MetricValues {
                    cpu_utilization: cpu,
                    ..Default::default()
                },
            });
        }
        let groups = group_utilization(&store);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].machines, 2, "machine 1 must not double-count");
        assert!((groups[0].mean_cpu_utilization - 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_store_empty_outputs() {
        let store = TelemetryStore::new();
        assert!(daily_group_aggregates(&store).is_empty());
        assert!(daily_group_aggregates_window(&store, 0, 100).is_empty());
        assert!(scatter(
            &store,
            GroupKey::new(SkuId(0), ScId(0)),
            Metric::CpuUtilization,
            Metric::NumberOfTasks
        )
        .is_empty());
    }

    #[test]
    fn work_stealing_output_matches_serial_on_skewed_groups() {
        // Pathological skew: one group with ~6k rows, seven groups with a
        // handful each. A contiguous count-based split would serialize
        // the giant group's partition; work stealing must still produce
        // output identical to the serial loop (per-group slots, ascending
        // group order).
        let mut store = TelemetryStore::new();
        let giant = GroupKey::new(SkuId(0), ScId(0));
        for m in 0..40u32 {
            for h in 0..150u64 {
                store.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: giant,
                    hour: h,
                    metrics: MetricValues {
                        cpu_utilization: (m + h as u32) as f64,
                        tasks_finished: h as f64,
                        avg_running_containers: m as f64 % 7.0,
                        ..Default::default()
                    },
                });
            }
        }
        for sku in 1..8u16 {
            for h in 0..3u64 {
                store.push(MachineHourRecord {
                    machine: MachineId(1000 + sku as u32),
                    group: GroupKey::new(SkuId(sku), ScId(0)),
                    hour: h,
                    metrics: MetricValues {
                        cpu_utilization: sku as f64,
                        ..Default::default()
                    },
                });
            }
        }
        // Serial ground truth via the single-worker kernel shape.
        let sides = store.sides();
        let machines = merged_machines(&sides);
        let groups = merged_groups(&sides, None);
        let n_machines = machines.ids.len();
        let serial: Vec<DailyAggregate> = {
            let mut scratch = DailyScratch {
                counts: vec![0; n_machines],
                sums: vec![[0.0; Metric::ALL.len()]; n_machines],
                touched: Vec::new(),
            };
            let mut out = Vec::new();
            for g in &groups {
                let start = out.len();
                let mut current_day = u64::MAX;
                for_each_merged_row(&sides, &machines, g, |r, dense| {
                    let day = r.hour / 24;
                    if day != current_day {
                        if current_day != u64::MAX {
                            drain_day(g.group, current_day, &machines.ids, &mut scratch, &mut out);
                        }
                        current_day = day;
                    }
                    if scratch.counts[dense] == 0 {
                        scratch.touched.push(dense as u32);
                    }
                    scratch.counts[dense] += 1;
                    for (acc, v) in scratch.sums[dense]
                        .iter_mut()
                        .zip(Metric::row_of(&r.metrics))
                    {
                        *acc += v;
                    }
                });
                if current_day != u64::MAX {
                    drain_day(g.group, current_day, &machines.ids, &mut scratch, &mut out);
                }
                out[start..].sort_unstable_by_key(|a| (a.machine, a.day));
            }
            out
        };
        // Repeat the parallel run a few times to vary steal interleaving.
        for _ in 0..5 {
            let parallel = daily_group_aggregates(&store);
            assert_eq!(parallel, serial, "work-stealing output must be schedule-independent");
        }
        let util = group_utilization(&store);
        assert_eq!(util.len(), 8);
        let keys: Vec<GroupKey> = util.iter().map(|u| u.group).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "utilization output stays in group order under skew");
        assert_eq!(util[0].machines, 40);
    }

    #[test]
    fn work_stealing_covers_every_group_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for n_groups in [0usize, 1, 2, 5, 16, 17, 64] {
            let calls = AtomicUsize::new(0);
            let out = run_group_partitions(
                n_groups,
                || (),
                |_, gi| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    vec![gi]
                },
            );
            assert_eq!(out, (0..n_groups).collect::<Vec<_>>());
            assert_eq!(calls.load(Ordering::Relaxed), n_groups);
        }
    }
}
