//! Aggregation and scatter-view extraction.
//!
//! §5.2.1: "Each small dot corresponds to an observation aggregated at the
//! daily level for a machine" — model fitting happens over daily
//! machine-level aggregates, grouped by `(SC, SKU)`. The scatter view of
//! Figure 8 is the hourly disaggregated variant. Both are produced here.

use crate::metric::Metric;
use crate::record::{GroupKey, MachineId};
use crate::store::TelemetryStore;
use kea_stats::Summary;
use std::collections::BTreeMap;

/// One daily aggregate for one machine: per-metric means over the hours
/// observed that day.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyAggregate {
    /// The machine.
    pub machine: MachineId,
    /// Its group.
    pub group: GroupKey,
    /// Day index.
    pub day: u64,
    /// Hours that contributed.
    pub hours_observed: u32,
    /// Mean of each metric over the contributing hours, indexed in
    /// [`Metric::ALL`] order.
    means: [f64; Metric::ALL.len()],
}

impl DailyAggregate {
    /// The daily mean of `metric`.
    pub fn mean(&self, metric: Metric) -> f64 {
        Metric::ALL
            .iter()
            .position(|m| *m == metric)
            .and_then(|idx| self.means.get(idx))
            .copied()
            .unwrap_or(f64::NAN)
    }
}

/// Rolls the store up into per-machine, per-day aggregates (the training
/// rows of §5.2.1), sorted by `(group, machine, day)`.
pub fn daily_group_aggregates(store: &TelemetryStore) -> Vec<DailyAggregate> {
    // (group, machine, day) → (count, per-metric sums)
    let mut acc: BTreeMap<(GroupKey, MachineId, u64), (u32, [f64; Metric::ALL.len()])> =
        BTreeMap::new();
    for r in store.iter() {
        let entry = acc
            .entry((r.group, r.machine, r.day()))
            .or_insert((0, [0.0; Metric::ALL.len()]));
        entry.0 += 1;
        for (i, metric) in Metric::ALL.iter().enumerate() {
            entry.1[i] += metric.value(&r.metrics);
        }
    }
    acc.into_iter()
        .map(|((group, machine, day), (count, sums))| {
            let mut means = sums;
            for v in &mut means {
                *v /= count as f64;
            }
            DailyAggregate {
                machine,
                group,
                day,
                hours_observed: count,
                means,
            }
        })
        .collect()
}

/// Distribution summary of one metric over all machine-hours of one group.
///
/// Returns `None` when the group has no records.
pub fn group_summary(store: &TelemetryStore, group: GroupKey, metric: Metric) -> Option<Summary> {
    let values: Vec<f64> = store
        .by_group(group)
        .map(|r| metric.value(&r.metrics))
        .collect();
    Summary::of(&values).ok()
}

/// One point of a scatter view (Figure 8): an `(x, y)` metric pair for one
/// machine-hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// The machine observed.
    pub machine: MachineId,
    /// Hour of observation.
    pub hour: u64,
    /// Value of the x-axis metric.
    pub x: f64,
    /// Value of the y-axis metric.
    pub y: f64,
}

/// Extracts the scatter view of `(x_metric, y_metric)` for one group —
/// "the scatter view depicts the data in a disaggregated way with each
/// point corresponding to one observation for a machine during one hour"
/// (§4.1).
pub fn scatter(
    store: &TelemetryStore,
    group: GroupKey,
    x_metric: Metric,
    y_metric: Metric,
) -> Vec<ScatterPoint> {
    store
        .by_group(group)
        .map(|r| ScatterPoint {
            machine: r.machine,
            hour: r.hour,
            x: x_metric.value(&r.metrics),
            y: y_metric.value(&r.metrics),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MachineHourRecord, MetricValues, ScId, SkuId};

    fn store_with_two_days() -> TelemetryStore {
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(1), ScId(0));
        for hour in 0..48u64 {
            store.push(MachineHourRecord {
                machine: MachineId(7),
                group,
                hour,
                metrics: MetricValues {
                    cpu_utilization: if hour < 24 { 50.0 } else { 70.0 },
                    tasks_finished: hour as f64,
                    ..Default::default()
                },
            });
        }
        store
    }

    #[test]
    fn daily_aggregates_split_by_day() {
        let store = store_with_two_days();
        let daily = daily_group_aggregates(&store);
        assert_eq!(daily.len(), 2);
        assert_eq!(daily[0].day, 0);
        assert_eq!(daily[1].day, 1);
        assert_eq!(daily[0].hours_observed, 24);
        assert_eq!(daily[0].mean(Metric::CpuUtilization), 50.0);
        assert_eq!(daily[1].mean(Metric::CpuUtilization), 70.0);
        // Mean of 0..24 = 11.5; of 24..48 = 35.5.
        assert!((daily[0].mean(Metric::NumberOfTasks) - 11.5).abs() < 1e-12);
        assert!((daily[1].mean(Metric::NumberOfTasks) - 35.5).abs() < 1e-12);
    }

    #[test]
    fn daily_aggregates_separate_machines_and_groups() {
        let mut store = TelemetryStore::new();
        for (m, sku) in [(1u32, 0u16), (2, 0), (3, 1)] {
            store.push(MachineHourRecord {
                machine: MachineId(m),
                group: GroupKey::new(SkuId(sku), ScId(0)),
                hour: 0,
                metrics: MetricValues::default(),
            });
        }
        let daily = daily_group_aggregates(&store);
        assert_eq!(daily.len(), 3);
        // Sorted by (group, machine, day): sku 0 machines first.
        assert_eq!(daily[0].machine, MachineId(1));
        assert_eq!(daily[2].group.sku, SkuId(1));
    }

    #[test]
    fn group_summary_reports_distribution() {
        let store = store_with_two_days();
        let group = GroupKey::new(SkuId(1), ScId(0));
        let s = group_summary(&store, group, Metric::CpuUtilization).unwrap();
        assert_eq!(s.count, 48);
        assert!((s.mean - 60.0).abs() < 1e-12);
        assert_eq!(s.min, 50.0);
        assert_eq!(s.max, 70.0);
        // Missing group yields None.
        assert!(group_summary(&store, GroupKey::new(SkuId(9), ScId(0)), Metric::CpuUtilization)
            .is_none());
    }

    #[test]
    fn scatter_extracts_pairs() {
        let store = store_with_two_days();
        let group = GroupKey::new(SkuId(1), ScId(0));
        let pts = scatter(&store, group, Metric::CpuUtilization, Metric::NumberOfTasks);
        assert_eq!(pts.len(), 48);
        assert_eq!(pts[0].x, 50.0);
        assert_eq!(pts[0].y, 0.0);
        assert_eq!(pts[47].x, 70.0);
        assert_eq!(pts[47].y, 47.0);
    }

    #[test]
    fn empty_store_empty_outputs() {
        let store = TelemetryStore::new();
        assert!(daily_group_aggregates(&store).is_empty());
        assert!(scatter(
            &store,
            GroupKey::new(SkuId(0), ScId(0)),
            Metric::CpuUtilization,
            Metric::NumberOfTasks
        )
        .is_empty());
    }
}
