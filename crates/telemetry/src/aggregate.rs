//! Aggregation kernels and scatter-view extraction.
//!
//! §5.2.1: "Each small dot corresponds to an observation aggregated at the
//! daily level for a machine" — model fitting happens over daily
//! machine-level aggregates, grouped by `(SC, SKU)`. The scatter view of
//! Figure 8 is the hourly disaggregated variant. Both are produced here,
//! along with the fleet series (Figure 1) and per-group utilization
//! (Figure 2) views the Performance Monitor serves.
//!
//! All four roll-ups are **fused single-pass kernels** over the sealed
//! columnar layout of [`TelemetryStore`]: they accumulate counts, sums,
//! and distinct-machine membership in flat arrays indexed by dense ids
//! (no `BTreeMap` entry lookup per record), and the per-group kernels
//! parallelize across contiguous group partitions with
//! [`std::thread::scope`] — the same worker shape as
//! `WhatIfEngine::fit_at`. The pre-columnar implementations survive in
//! [`reference`] as the executable specification and benchmark baseline.

// kea-lint: allow-file(index-in-library) — dense aggregation kernels: rows
// come from the store's own CSR offset tables and every bucket index is a
// dense id interned by the same index (bounds pinned by store tests).

use crate::metric::Metric;
use crate::record::{GroupKey, MachineId};
use crate::store::TelemetryStore;
use kea_stats::Summary;

/// One daily aggregate for one machine: per-metric means over the hours
/// observed that day.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyAggregate {
    /// The machine.
    pub machine: MachineId,
    /// Its group.
    pub group: GroupKey,
    /// Day index.
    pub day: u64,
    /// Hours that contributed.
    pub hours_observed: u32,
    /// Mean of each metric over the contributing hours, indexed in
    /// [`Metric::ALL`] order.
    means: [f64; Metric::ALL.len()],
}

impl DailyAggregate {
    /// The daily mean of `metric` — a constant-time array read via
    /// [`Metric::index`].
    pub fn mean(&self, metric: Metric) -> f64 {
        self.means
            .get(metric.index())
            .copied()
            .unwrap_or(f64::NAN)
    }
}

/// Per-group fleet composition and utilization (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupUtilization {
    /// The machine group.
    pub group: GroupKey,
    /// Number of distinct machines observed in the group.
    pub machines: usize,
    /// Mean CPU utilization over all machine-hours, percent.
    pub mean_cpu_utilization: f64,
    /// Mean running containers.
    pub mean_running_containers: f64,
}

/// Splits `0..n_groups` into at most `n_workers` contiguous partitions of
/// near-equal size (group count, not row count, is the unit of work —
/// the right grain for many similar-sized groups).
fn group_partitions(n_groups: usize, n_workers: usize) -> Vec<std::ops::Range<usize>> {
    if n_groups == 0 {
        return Vec::new();
    }
    let n_workers = n_workers.clamp(1, n_groups);
    let per_worker = n_groups.div_ceil(n_workers);
    (0..n_groups)
        .step_by(per_worker)
        .map(|start| start..(start + per_worker).min(n_groups))
        .collect()
}

/// Runs `work` over each contiguous group partition, in parallel on
/// scoped threads when more than one partition exists. Partition results
/// land in order, so concatenating them preserves global group order and
/// the output is identical to a serial loop for any worker count.
fn run_group_partitions<T: Send>(
    n_groups: usize,
    work: impl Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
) -> Vec<T> {
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let partitions = group_partitions(n_groups, n_workers);
    if partitions.len() <= 1 {
        return partitions.into_iter().flat_map(&work).collect();
    }
    let mut slots: Vec<Option<Vec<T>>> = Vec::new();
    slots.resize_with(partitions.len(), || None);
    std::thread::scope(|scope| {
        for (partition, slot) in partitions.into_iter().zip(&mut slots) {
            let work = &work;
            scope.spawn(move || {
                *slot = Some(work(partition));
            });
        }
    });
    // Every slot is written exactly once by its worker; flatten in
    // partition order.
    slots.into_iter().flatten().flatten().collect()
}

/// Rolls the store up into per-machine, per-day aggregates (the training
/// rows of §5.2.1), sorted by `(group, machine, day)`.
///
/// Kernel shape: within a group the sorted rows are hour-major, so days
/// arrive as contiguous runs; each day's rows accumulate into flat
/// `(count, sums)` buckets indexed by dense machine id, and only touched
/// buckets are drained and reset at the day boundary. Groups are
/// processed in parallel partitions.
pub fn daily_group_aggregates(store: &TelemetryStore) -> Vec<DailyAggregate> {
    let index = store.index();
    let n_machines = index.machines.len();
    let out = run_group_partitions(index.groups.len(), |partition| {
        // Per-worker scratch, sized once for the whole fleet: a u32
        // count and a metric-row sum per dense machine id, plus the list
        // of ids touched this day (so a day boundary resets O(touched),
        // not O(n_machines)).
        let mut counts = vec![0u32; n_machines];
        let mut sums = vec![[0.0f64; Metric::ALL.len()]; n_machines];
        let mut touched: Vec<u32> = Vec::new();
        let mut out: Vec<DailyAggregate> = Vec::new();
        for gi in partition {
            let group = index.groups[gi];
            let rows = index.group_offsets[gi]..index.group_offsets[gi + 1];
            let group_start = out.len();
            let mut current_day = index.sorted[rows.start].hour / 24;
            for row in rows {
                let r = &index.sorted[row];
                let day = r.hour / 24;
                if day != current_day {
                    drain_day(group, current_day, index, &mut counts, &mut sums, &mut touched, &mut out);
                    current_day = day;
                }
                let dense = index.machine_dense[row] as usize;
                if counts[dense] == 0 {
                    touched.push(dense as u32);
                }
                counts[dense] += 1;
                let row_values = Metric::row_of(&r.metrics);
                for (acc, v) in sums[dense].iter_mut().zip(row_values) {
                    *acc += v;
                }
            }
            drain_day(group, current_day, index, &mut counts, &mut sums, &mut touched, &mut out);
            // Day-major production order → the documented (machine, day)
            // order within the group.
            out[group_start..].sort_unstable_by_key(|a| (a.machine, a.day));
        }
        out
    });
    out
}

/// Drains every touched daily bucket into `out` and resets the scratch.
fn drain_day(
    group: GroupKey,
    day: u64,
    index: &crate::store::ColumnIndex,
    counts: &mut [u32],
    sums: &mut [[f64; Metric::ALL.len()]],
    touched: &mut Vec<u32>,
    out: &mut Vec<DailyAggregate>,
) {
    for &dense in touched.iter() {
        let dense = dense as usize;
        let count = counts[dense];
        let mut means = sums[dense];
        for v in &mut means {
            *v /= count as f64;
        }
        out.push(DailyAggregate {
            machine: index.machines[dense],
            group,
            day,
            hours_observed: count,
            means,
        });
        counts[dense] = 0;
        sums[dense] = [0.0; Metric::ALL.len()];
    }
    touched.clear();
}

/// Distribution summary of one metric over all machine-hours of one group
/// — a single pass over the group's contiguous metric column.
///
/// Returns `None` when the group has no records.
pub fn group_summary(store: &TelemetryStore, group: GroupKey, metric: Metric) -> Option<Summary> {
    Summary::of(store.index().group_column(group, metric)).ok()
}

/// Fleet-wide mean of `metric` per hour — the Figure 1 series, with one
/// `(hour, mean)` point for every hour of the store's span (0.0 for hours
/// no machine reported). Empty when the store is empty.
///
/// Kernel shape: the hour CSR index yields each hour's rows directly;
/// the mean is a gather-sum over the metric column — no per-record map
/// lookups and no predicate scans.
pub fn hourly_fleet_series(store: &TelemetryStore, metric: Metric) -> Vec<(u64, f64)> {
    let index = store.index();
    let Some((&start, &end_inclusive)) = index.hours.first().zip(index.hours.last()) else {
        return Vec::new();
    };
    let column = &index.columns[metric.index()];
    let mut out = Vec::with_capacity((end_inclusive - start + 1) as usize);
    let mut hp = 0usize; // cursor into the distinct-hour index
    for hour in start..=end_inclusive {
        if index.hours.get(hp) == Some(&hour) {
            let positions = index.hour_offsets[hp]..index.hour_offsets[hp + 1];
            let n = positions.len();
            let sum: f64 = index.hour_order[positions]
                .iter()
                .map(|&row| column[row])
                .sum();
            out.push((hour, sum / n as f64));
            hp += 1;
        } else {
            out.push((hour, 0.0));
        }
    }
    out
}

/// Machine counts and mean utilization per group — Figure 2's two panels,
/// sorted by group key (i.e. hardware generation). Empty when the store
/// is empty.
///
/// Kernel shape: per group, the CPU and container means are contiguous
/// column-slice sums, and the distinct-machine count is a seen-bitmap
/// over dense machine ids (reset via the touched list). Groups run in
/// parallel partitions.
pub fn group_utilization(store: &TelemetryStore) -> Vec<GroupUtilization> {
    let index = store.index();
    let n_machines = index.machines.len();
    let cpu = &index.columns[Metric::CpuUtilization.index()];
    let containers = &index.columns[Metric::AverageRunningContainers.index()];
    run_group_partitions(index.groups.len(), |partition| {
        let mut seen = vec![false; n_machines];
        let mut touched: Vec<u32> = Vec::new();
        let mut out = Vec::with_capacity(partition.len());
        for gi in partition {
            let rows = index.group_offsets[gi]..index.group_offsets[gi + 1];
            let n = rows.len();
            for row in rows.clone() {
                let dense = index.machine_dense[row] as usize;
                if !seen[dense] {
                    seen[dense] = true;
                    touched.push(dense as u32);
                }
            }
            let cpu_sum: f64 = cpu[rows.clone()].iter().sum();
            let containers_sum: f64 = containers[rows].iter().sum();
            out.push(GroupUtilization {
                group: index.groups[gi],
                machines: touched.len(),
                mean_cpu_utilization: cpu_sum / n as f64,
                mean_running_containers: containers_sum / n as f64,
            });
            for &dense in &touched {
                seen[dense as usize] = false;
            }
            touched.clear();
        }
        out
    })
}

/// One point of a scatter view (Figure 8): an `(x, y)` metric pair for one
/// machine-hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// The machine observed.
    pub machine: MachineId,
    /// Hour of observation.
    pub hour: u64,
    /// Value of the x-axis metric.
    pub x: f64,
    /// Value of the y-axis metric.
    pub y: f64,
}

/// Extracts the scatter view of `(x_metric, y_metric)` for one group —
/// "the scatter view depicts the data in a disaggregated way with each
/// point corresponding to one observation for a machine during one hour"
/// (§4.1). Points come out in `(hour, machine)` order (the group's
/// contiguous slice order).
pub fn scatter(
    store: &TelemetryStore,
    group: GroupKey,
    x_metric: Metric,
    y_metric: Metric,
) -> Vec<ScatterPoint> {
    store
        .group_records(group)
        .iter()
        .map(|r| ScatterPoint {
            machine: r.machine,
            hour: r.hour,
            x: x_metric.value(&r.metrics),
            y: y_metric.value(&r.metrics),
        })
        .collect()
}

/// Pre-columnar roll-ups over the flat [`reference
/// store`](crate::store::reference::TelemetryStore), preserved as the
/// executable specification: per-record `BTreeMap` entry lookups for the
/// bucketed views and full predicate scans for the filtered ones. The
/// agreement suite pins these against the columnar kernels to 1e-9; the
/// `telemetry_scan` bench reports the speedup.
pub mod reference {
    use super::{DailyAggregate, GroupUtilization};
    use crate::metric::Metric;
    use crate::record::{GroupKey, MachineId};
    use crate::store::reference::TelemetryStore;
    use kea_stats::Summary;
    use std::collections::BTreeMap;

    /// Per-machine, per-day aggregates via a `(group, machine, day)` →
    /// `(count, sums)` tree with one entry lookup per record.
    pub fn daily_group_aggregates(store: &TelemetryStore) -> Vec<DailyAggregate> {
        let mut acc: BTreeMap<(GroupKey, MachineId, u64), (u32, [f64; Metric::ALL.len()])> =
            BTreeMap::new();
        for r in store.iter() {
            let entry = acc
                .entry((r.group, r.machine, r.day()))
                .or_insert((0, [0.0; Metric::ALL.len()]));
            entry.0 += 1;
            for (i, metric) in Metric::ALL.iter().enumerate() {
                entry.1[i] += metric.value(&r.metrics);
            }
        }
        acc.into_iter()
            .map(|((group, machine, day), (count, sums))| {
                let mut means = sums;
                for v in &mut means {
                    *v /= count as f64;
                }
                DailyAggregate {
                    machine,
                    group,
                    day,
                    hours_observed: count,
                    means,
                }
            })
            .collect()
    }

    /// Distribution summary of one metric for one group via a full
    /// predicate scan and a collected value vector.
    pub fn group_summary(
        store: &TelemetryStore,
        group: GroupKey,
        metric: Metric,
    ) -> Option<Summary> {
        let values: Vec<f64> = store
            .by_group(group)
            .map(|r| metric.value(&r.metrics))
            .collect();
        Summary::of(&values).ok()
    }

    /// Fleet-wide hourly mean series via an hour-keyed `BTreeMap` with
    /// one lookup per record.
    pub fn hourly_fleet_series(store: &TelemetryStore, metric: Metric) -> Vec<(u64, f64)> {
        let Some((start, end)) = store.hour_span() else {
            return Vec::new();
        };
        let mut sums: BTreeMap<u64, (f64, u64)> = (start..end).map(|h| (h, (0.0, 0))).collect();
        for rec in store.iter() {
            if let Some(e) = sums.get_mut(&rec.hour) {
                e.0 += metric.value(&rec.metrics);
                e.1 += 1;
            }
        }
        sums.into_iter()
            .map(|(h, (sum, n))| (h, if n == 0 { 0.0 } else { sum / n as f64 }))
            .collect()
    }

    /// Per-group machine counts and means via a group-keyed `BTreeMap`
    /// holding a `BTreeSet` of machine ids per group.
    pub fn group_utilization(store: &TelemetryStore) -> Vec<GroupUtilization> {
        let mut acc: BTreeMap<GroupKey, (std::collections::BTreeSet<u32>, f64, f64, u64)> =
            BTreeMap::new();
        for rec in store.iter() {
            let e = acc.entry(rec.group).or_default();
            e.0.insert(rec.machine.0);
            e.1 += rec.metrics.cpu_utilization;
            e.2 += rec.metrics.avg_running_containers;
            e.3 += 1;
        }
        acc.into_iter()
            .map(|(group, (machines, util, containers, n))| GroupUtilization {
                group,
                machines: machines.len(),
                mean_cpu_utilization: util / n as f64,
                mean_running_containers: containers / n as f64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MachineHourRecord, MetricValues, ScId, SkuId};

    fn store_with_two_days() -> TelemetryStore {
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(1), ScId(0));
        for hour in 0..48u64 {
            store.push(MachineHourRecord {
                machine: MachineId(7),
                group,
                hour,
                metrics: MetricValues {
                    cpu_utilization: if hour < 24 { 50.0 } else { 70.0 },
                    tasks_finished: hour as f64,
                    ..Default::default()
                },
            });
        }
        store
    }

    #[test]
    fn daily_aggregates_split_by_day() {
        let store = store_with_two_days();
        let daily = daily_group_aggregates(&store);
        assert_eq!(daily.len(), 2);
        assert_eq!(daily[0].day, 0);
        assert_eq!(daily[1].day, 1);
        assert_eq!(daily[0].hours_observed, 24);
        assert_eq!(daily[0].mean(Metric::CpuUtilization), 50.0);
        assert_eq!(daily[1].mean(Metric::CpuUtilization), 70.0);
        // Mean of 0..24 = 11.5; of 24..48 = 35.5.
        assert!((daily[0].mean(Metric::NumberOfTasks) - 11.5).abs() < 1e-12);
        assert!((daily[1].mean(Metric::NumberOfTasks) - 35.5).abs() < 1e-12);
    }

    #[test]
    fn daily_aggregates_separate_machines_and_groups() {
        let mut store = TelemetryStore::new();
        for (m, sku) in [(1u32, 0u16), (2, 0), (3, 1)] {
            store.push(MachineHourRecord {
                machine: MachineId(m),
                group: GroupKey::new(SkuId(sku), ScId(0)),
                hour: 0,
                metrics: MetricValues::default(),
            });
        }
        let daily = daily_group_aggregates(&store);
        assert_eq!(daily.len(), 3);
        // Sorted by (group, machine, day): sku 0 machines first.
        assert_eq!(daily[0].machine, MachineId(1));
        assert_eq!(daily[2].group.sku, SkuId(1));
    }

    #[test]
    fn daily_aggregates_sorted_by_group_machine_day() {
        // Machines interleaved across days and groups, inserted shuffled.
        let mut store = TelemetryStore::new();
        for (m, sku, hour) in [
            (2u32, 1u16, 30u64),
            (1, 0, 0),
            (2, 1, 2),
            (1, 0, 26),
            (3, 0, 1),
            (3, 0, 49),
        ] {
            store.push(MachineHourRecord {
                machine: MachineId(m),
                group: GroupKey::new(SkuId(sku), ScId(0)),
                hour,
                metrics: MetricValues::default(),
            });
        }
        let daily = daily_group_aggregates(&store);
        let keys: Vec<_> = daily.iter().map(|a| (a.group, a.machine, a.day)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "output must be (group, machine, day)-sorted");
        assert_eq!(daily.len(), 6);
    }

    #[test]
    fn group_summary_reports_distribution() {
        let store = store_with_two_days();
        let group = GroupKey::new(SkuId(1), ScId(0));
        let s = group_summary(&store, group, Metric::CpuUtilization).unwrap();
        assert_eq!(s.count, 48);
        assert!((s.mean - 60.0).abs() < 1e-12);
        assert_eq!(s.min, 50.0);
        assert_eq!(s.max, 70.0);
        // Missing group yields None.
        assert!(group_summary(&store, GroupKey::new(SkuId(9), ScId(0)), Metric::CpuUtilization)
            .is_none());
    }

    #[test]
    fn scatter_extracts_pairs() {
        let store = store_with_two_days();
        let group = GroupKey::new(SkuId(1), ScId(0));
        let pts = scatter(&store, group, Metric::CpuUtilization, Metric::NumberOfTasks);
        assert_eq!(pts.len(), 48);
        assert_eq!(pts[0].x, 50.0);
        assert_eq!(pts[0].y, 0.0);
        assert_eq!(pts[47].x, 70.0);
        assert_eq!(pts[47].y, 47.0);
    }

    #[test]
    fn hourly_series_fills_gaps_with_zero() {
        let mut store = TelemetryStore::new();
        let group = GroupKey::new(SkuId(0), ScId(0));
        for (m, hour, cpu) in [(1u32, 3u64, 10.0), (2, 3, 30.0), (1, 6, 50.0)] {
            store.push(MachineHourRecord {
                machine: MachineId(m),
                group,
                hour,
                metrics: MetricValues {
                    cpu_utilization: cpu,
                    ..Default::default()
                },
            });
        }
        let series = hourly_fleet_series(&store, Metric::CpuUtilization);
        assert_eq!(
            series,
            vec![(3, 20.0), (4, 0.0), (5, 0.0), (6, 50.0)],
            "span-covering series with zero-filled gaps"
        );
        assert!(hourly_fleet_series(&TelemetryStore::new(), Metric::CpuUtilization).is_empty());
    }

    #[test]
    fn group_utilization_counts_distinct_machines() {
        let mut store = TelemetryStore::new();
        for m in 0..4u32 {
            for h in 0..10u64 {
                let sku = if m < 2 { 0 } else { 1 };
                store.push(MachineHourRecord {
                    machine: MachineId(m),
                    group: GroupKey::new(SkuId(sku), ScId(1)),
                    hour: h,
                    metrics: MetricValues {
                        cpu_utilization: 50.0 + sku as f64 * 10.0 + h as f64,
                        avg_running_containers: 5.0 + sku as f64,
                        ..Default::default()
                    },
                });
            }
        }
        let groups = group_utilization(&store);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].machines, 2);
        assert_eq!(groups[1].machines, 2);
        assert!(groups[1].mean_cpu_utilization > groups[0].mean_cpu_utilization);
        assert!((groups[0].mean_running_containers - 5.0).abs() < 1e-12);
        assert!(group_utilization(&TelemetryStore::new()).is_empty());
    }

    #[test]
    fn empty_store_empty_outputs() {
        let store = TelemetryStore::new();
        assert!(daily_group_aggregates(&store).is_empty());
        assert!(scatter(
            &store,
            GroupKey::new(SkuId(0), ScId(0)),
            Metric::CpuUtilization,
            Metric::NumberOfTasks
        )
        .is_empty());
    }

    #[test]
    fn partitions_cover_groups_exactly_once() {
        for n_groups in [0usize, 1, 2, 5, 16, 17] {
            for n_workers in [1usize, 2, 4, 32] {
                let parts = group_partitions(n_groups, n_workers);
                let covered: Vec<usize> = parts.iter().cloned().flatten().collect();
                assert_eq!(covered, (0..n_groups).collect::<Vec<_>>());
                assert!(parts.len() <= n_workers.max(1));
            }
        }
    }
}
