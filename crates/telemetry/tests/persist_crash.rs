//! Crash-safety suite for the durable telemetry store.
//!
//! The durability contract under test: after reopening a directory
//! written by a process that died at an arbitrary point, every record
//! covered by a completed `sync()` is recovered (checksum-verified),
//! a torn WAL tail is truncated, corrupt segments are quarantined with
//! a typed error — and recovery *never* panics. Agreement is asserted
//! against the flat-scan reference store on every view and kernel, the
//! same machinery as `tests/agreement.rs`.
//!
//! "Process death" is simulated two ways: dropping the store without a
//! final sync (nothing buffers in the store, so a drop *is* a kill
//! between syncs), and truncating / byte-flipping the on-disk files at
//! randomized offsets, which covers a kill mid-`write(2)`.

use kea_telemetry::aggregate::reference as ref_agg;
use kea_telemetry::store::reference::TelemetryStore as RefStore;
use kea_telemetry::{
    daily_group_aggregates, group_utilization, hourly_fleet_series, GroupKey, MachineHourRecord,
    MachineId, Metric, MetricValues, PersistError, ScId, SkuId, TelemetryStore,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

// ---- scratch directories ----------------------------------------------

/// A unique scratch directory removed on drop (kept on panic only if the
/// drop never runs, i.e. never — proptest catches the panic first, so
/// cleanup is reliable).
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new() -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "kea-persist-crash-{}-{n}",
            std::process::id()
        ));
        // A stale dir from a previous run with the same pid is removed
        // rather than recovered into.
        let _ = std::fs::remove_dir_all(&dir);
        Scratch { dir }
    }

    fn path(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

// ---- record generation and agreement (as in tests/agreement.rs) -------

const HOURS: [u64; 12] = [0, 1, 2, 5, 23, 24, 47, 48, 49, 120, 121, 500];

fn arb_record() -> impl Strategy<Value = MachineHourRecord> {
    (0u32..6, 0u16..3, 0usize..HOURS.len(), 0.0..100.0f64, 0.0..500.0f64).prop_map(
        |(machine, sku, hour_idx, cpu, tasks)| MachineHourRecord {
            machine: MachineId(machine),
            group: GroupKey::new(SkuId(sku), ScId(1 + (machine % 2) as u8)),
            hour: HOURS[hour_idx % HOURS.len()],
            metrics: MetricValues {
                cpu_utilization: cpu,
                tasks_finished: tasks,
                total_data_read_gb: tasks * 0.5,
                cpu_time_s: cpu * 3.0,
                avg_running_containers: 1.0 + cpu * 0.1,
                ..Default::default()
            },
        },
    )
}

fn record_key(r: &MachineHourRecord) -> (u16, u8, u64, u32, u64, u64) {
    (
        r.group.sku.0,
        r.group.sc.0,
        r.hour,
        r.machine.0,
        r.metrics.tasks_finished.to_bits(),
        r.metrics.cpu_utilization.to_bits(),
    )
}

fn sorted_keys<'a>(
    it: impl Iterator<Item = &'a MachineHourRecord>,
) -> Vec<(u16, u8, u64, u32, u64, u64)> {
    let mut keys: Vec<_> = it.map(record_key).collect();
    keys.sort_unstable();
    keys
}

fn close(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Structural + numeric agreement between the reference store and a
/// (recovered) columnar store, across every view family and kernel.
fn assert_agrees(reference: &RefStore, columnar: &TelemetryStore) {
    assert_eq!(reference.len(), columnar.len());
    assert_eq!(reference.groups(), columnar.groups());
    assert_eq!(reference.machines(), columnar.machines());
    assert_eq!(reference.hour_span(), columnar.hour_span());
    for g in reference.groups() {
        assert_eq!(sorted_keys(reference.by_group(g)), sorted_keys(columnar.by_group(g)));
    }
    for m in reference.machines() {
        assert_eq!(sorted_keys(reference.by_machine(m)), sorted_keys(columnar.by_machine(m)));
    }
    let (lo, hi) = reference.hour_span().unwrap_or((0, 0));
    assert_eq!(
        sorted_keys(reference.by_hours(lo, hi)),
        sorted_keys(columnar.by_hours(lo, hi))
    );

    let ref_daily = ref_agg::daily_group_aggregates(reference);
    let col_daily = daily_group_aggregates(columnar);
    assert_eq!(ref_daily.len(), col_daily.len());
    for (r, c) in ref_daily.iter().zip(&col_daily) {
        assert_eq!((r.group, r.machine, r.day), (c.group, c.machine, c.day));
        assert_eq!(r.hours_observed, c.hours_observed);
        for m in [Metric::CpuUtilization, Metric::NumberOfTasks, Metric::TotalDataRead] {
            assert!(
                close(r.mean(m), c.mean(m)),
                "daily mean of {m} drifted: {} vs {}",
                r.mean(m),
                c.mean(m)
            );
        }
    }
    let r_series = ref_agg::hourly_fleet_series(reference, Metric::CpuUtilization);
    let c_series = hourly_fleet_series(columnar, Metric::CpuUtilization);
    assert_eq!(r_series.len(), c_series.len());
    for ((rh, rv), (ch, cv)) in r_series.iter().zip(&c_series) {
        assert_eq!(rh, ch);
        assert!(close(*rv, *cv), "fleet series at hour {rh} drifted");
    }
    let r_util = ref_agg::group_utilization(reference);
    let c_util = group_utilization(columnar);
    assert_eq!(r_util.len(), c_util.len());
    for (r, c) in r_util.iter().zip(&c_util) {
        assert_eq!((r.group, r.machines), (c.group, c.machines));
        assert!(close(r.mean_cpu_utilization, c.mean_cpu_utilization));
    }
}

/// Reads the live WAL file name out of `dir/MANIFEST` (the documented
/// text format: one `wal <name>` line).
fn live_wal(dir: &Path) -> PathBuf {
    let text = std::fs::read_to_string(dir.join("MANIFEST")).expect("manifest readable");
    for line in text.lines() {
        if let Some(name) = line.strip_prefix("wal ") {
            return dir.join(name);
        }
    }
    panic!("no wal line in manifest: {text:?}");
}

/// Reads the live segment file names out of `dir/MANIFEST`.
fn live_segments(dir: &Path) -> Vec<PathBuf> {
    let text = std::fs::read_to_string(dir.join("MANIFEST")).expect("manifest readable");
    text.lines()
        .filter_map(|l| l.strip_prefix("segment "))
        .filter_map(|rest| rest.split(' ').next())
        .map(|name| dir.join(name))
        .collect()
}

// ---- the crash-point properties ---------------------------------------

/// One mutation step against the durable store. `Sync` is the
/// durability point; `Seal` forces a compaction so the next sync
/// rotates WAL contents into a segment.
#[derive(Debug, Clone)]
enum Op {
    PushBatch(Vec<MachineHourRecord>),
    Seal,
    Sync,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec(arb_record(), 1..60).prop_map(Op::PushBatch),
        1 => Just(Op::Seal),
        2 => Just(Op::Sync),
    ]
}

proptest! {
    /// Graceful-path agreement: any interleaving of push/seal/sync,
    /// closed with a sync, must reopen into a store that agrees with
    /// the in-memory reference on every view and kernel — and a second
    /// generation of appends on the *reopened* store must too.
    #[test]
    fn reopen_agrees_with_reference(
        ops in proptest::collection::vec(arb_op(), 1..10),
        tail in proptest::collection::vec(arb_record(), 0..40),
    ) {
        let scratch = Scratch::new();
        let mut reference = RefStore::new();
        let mut store = TelemetryStore::open(scratch.path()).expect("open fresh");
        prop_assert!(store.is_durable());
        prop_assert_eq!(store.storage_dir(), Some(scratch.path()));

        for op in &ops {
            match op {
                Op::PushBatch(records) => {
                    reference.extend(records.iter().copied());
                    store.extend(records.iter().copied());
                }
                Op::Seal => store.seal(),
                Op::Sync => store.sync().expect("sync"),
            }
        }
        store.sync().expect("final sync");
        drop(store);

        let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
        assert_agrees(&reference, &reopened);

        // Second generation: keep appending on the recovered store.
        let mut store = reopened;
        reference.extend(tail.iter().copied());
        store.extend(tail.iter().copied());
        store.seal();
        store.sync().expect("sync after reopen");
        drop(store);
        let reopened = TelemetryStore::open(scratch.path()).expect("second reopen");
        assert_agrees(&reference, &reopened);
    }

    /// Kill-point property for the WAL: truncate the live WAL at an
    /// arbitrary byte offset (a crash mid-append) and reopen. The
    /// recovered delta must be an append-order *prefix* of what was
    /// written, every batch closed by a sync *before* the last one must
    /// survive in full, and the recovered store must agree with a
    /// reference over exactly the recovered records.
    #[test]
    fn wal_truncated_at_any_offset_recovers_synced_prefix(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_record(), 1..30), 1..6),
        cut_frac in 0.0..1.0f64,
    ) {
        let scratch = Scratch::new();
        let mut store = TelemetryStore::open(scratch.path()).expect("open fresh");
        let mut appended = Vec::new();
        let mut synced_len = 0usize;
        for batch in &batches {
            store.extend(batch.iter().copied());
            appended.extend_from_slice(batch);
            store.sync().expect("sync");
            synced_len = appended.len();
        }
        // A few unsynced records sit only in memory — lost by design.
        store.extend(batches.iter().flatten().take(3).copied());
        drop(store);

        // Crash mid-write: truncate the WAL at an arbitrary offset.
        let wal = live_wal(scratch.path());
        let full = std::fs::metadata(&wal).expect("wal meta").len();
        let cut = (full as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&wal).expect("open wal");
        f.set_len(cut).expect("truncate");
        drop(f);

        if cut < 8 {
            // A cut inside the magic is not crash-reachable (the magic
            // is fsynced before the manifest ever names the WAL): that
            // is real corruption, and must fail typed — never panic.
            let err = TelemetryStore::open(scratch.path())
                .expect_err("short-magic WAL must not open");
            prop_assert!(matches!(err, PersistError::Corrupt { .. }), "got {err}");
            return;
        }
        let recovered = TelemetryStore::open(scratch.path()).expect("recovery must not fail");
        let got: Vec<MachineHourRecord> = recovered.iter().copied().collect();

        // Recovered records are an append-order prefix of what was
        // appended (frames are atomic: a cut inside frame k drops
        // frames k.. entirely); the unsynced tail never hit disk.
        prop_assert!(got.len() <= appended.len());
        let expect_prefix: Vec<_> = appended.iter().take(got.len()).copied().collect();
        prop_assert_eq!(&got, &expect_prefix, "recovered records are not a prefix");

        // Nothing before the final sync may be lost unless the cut fell
        // before the final frame; a cut at or past `full` loses nothing.
        if cut >= full {
            prop_assert_eq!(got.len(), synced_len);
        }

        // And the recovered store behaves exactly like a fresh store
        // over the recovered records.
        let mut reference = RefStore::new();
        reference.extend(got.iter().copied());
        assert_agrees(&reference, &recovered);
    }

    /// Kill-point property for rotation: seal + sync (spilling a
    /// segment), then flip one byte anywhere in the segment file. Open
    /// must fail with a typed `Corrupt` error — never a panic — and
    /// quarantine the damaged file.
    #[test]
    fn segment_byte_flip_quarantines_with_typed_error(
        records in proptest::collection::vec(arb_record(), 1..80),
        flip_frac in 0.0..1.0f64,
        flip_bit in 0u8..8,
    ) {
        let scratch = Scratch::new();
        let mut store = TelemetryStore::open(scratch.path()).expect("open fresh");
        store.extend(records.iter().copied());
        store.seal();
        store.sync().expect("sync");
        drop(store);

        let segments = live_segments(scratch.path());
        prop_assert_eq!(segments.len(), 1, "seal+sync must spill exactly one segment");
        let seg = &segments[0];
        let mut bytes = std::fs::read(seg).expect("read segment");
        let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[at] ^= 1 << flip_bit;
        std::fs::write(seg, &bytes).expect("write corrupted segment");

        match TelemetryStore::open(scratch.path()) {
            Err(PersistError::Corrupt { path, .. }) => {
                prop_assert_eq!(&path, seg);
                let quarantined = seg.with_extension("kseg.quarantine");
                prop_assert!(quarantined.exists(), "corrupt segment not quarantined");
                prop_assert!(!seg.exists());
            }
            Err(other) => prop_assert!(false, "wrong error type: {other}"),
            Ok(_) => prop_assert!(false, "open succeeded on corrupt segment"),
        }
    }
}

// ---- directed crash/abuse cases ---------------------------------------

fn rec(i: u64) -> MachineHourRecord {
    MachineHourRecord {
        machine: MachineId((i % 11) as u32),
        group: GroupKey::new(SkuId((i % 4) as u16), ScId((i % 2) as u8)),
        hour: i / 11,
        metrics: MetricValues { tasks_finished: i as f64, ..MetricValues::default() },
    }
}

#[test]
fn sync_on_in_memory_store_is_not_durable() {
    let mut store = TelemetryStore::new();
    store.push(rec(1));
    assert!(!store.is_durable());
    assert!(store.storage_dir().is_none());
    assert!(matches!(store.sync(), Err(PersistError::NotDurable)));
}

#[test]
fn clone_of_durable_store_is_detached() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..50).map(rec));
    store.sync().expect("sync");

    let mut clone = store.clone();
    assert!(!clone.is_durable());
    assert!(matches!(clone.sync(), Err(PersistError::NotDurable)));
    // Mutating the clone must not disturb the original's directory.
    clone.extend((50..100).map(rec));
    drop(store);
    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert_eq!(reopened.len(), 50);
}

#[test]
fn unsynced_records_are_lost_synced_records_survive() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..30).map(rec));
    store.sync().expect("sync");
    store.extend((30..60).map(rec)); // never synced — the crash eats these
    drop(store);

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    let got: Vec<_> = reopened.iter().copied().collect();
    let want: Vec<_> = (0..30).map(rec).collect();
    assert_eq!(got, want);
}

#[test]
fn rotation_covers_compaction_spill_and_wal_reset() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    // Past the 1024 auto-compaction threshold: the store compacts on its
    // own, so the next sync must rotate without an explicit seal.
    store.extend((0..2000).map(rec));
    store.sync().expect("sync");
    assert!(!live_segments(scratch.path()).is_empty(), "compaction must spill a segment");
    // The tail past the compaction point rides in the WAL.
    store.extend((2000..2010).map(rec));
    store.sync().expect("tail sync");
    drop(store);

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert_eq!(reopened.len(), 2010);
    let mut reference = RefStore::new();
    reference.extend((0..2010).map(rec));
    assert_agrees(&reference, &reopened);
}

#[test]
fn missing_manifest_with_store_files_is_typed_error() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..1500).map(rec));
    store.seal();
    store.sync().expect("sync");
    drop(store);

    std::fs::remove_file(scratch.path().join("MANIFEST")).expect("remove manifest");
    match TelemetryStore::open(scratch.path()) {
        Err(PersistError::MissingManifest { dir }) => assert_eq!(dir, scratch.path()),
        other => panic!("expected MissingManifest, got {other:?}"),
    }
}

#[test]
fn garbage_manifest_is_corrupt_not_panic() {
    let scratch = Scratch::new();
    std::fs::create_dir_all(scratch.path()).expect("mkdir");
    std::fs::write(scratch.path().join("MANIFEST"), b"\xFF\xFEtotal garbage\n").expect("write");
    assert!(matches!(
        TelemetryStore::open(scratch.path()),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn manifest_path_traversal_is_rejected() {
    let scratch = Scratch::new();
    std::fs::create_dir_all(scratch.path()).expect("mkdir");
    std::fs::write(
        scratch.path().join("MANIFEST"),
        "kea-telemetry-manifest v1\nsegment ../../escape.kseg rows 5\nwal w.wal\n",
    )
    .expect("write");
    assert!(matches!(
        TelemetryStore::open(scratch.path()),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn orphans_from_interrupted_rotation_are_swept() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..10).map(rec));
    store.sync().expect("sync");
    drop(store);

    // Fake the debris of a rotation that died before the manifest flip:
    // a segment nobody references, a stray WAL, a temp file.
    std::fs::write(scratch.path().join("seg-000099.kseg"), b"debris").expect("write");
    std::fs::write(scratch.path().join("wal-000099.wal"), b"debris").expect("write");
    std::fs::write(scratch.path().join("seg-000100.kseg.tmp"), b"debris").expect("write");

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen sweeps orphans");
    assert_eq!(reopened.len(), 10);
    assert!(!scratch.path().join("seg-000099.kseg").exists());
    assert!(!scratch.path().join("wal-000099.wal").exists());
    assert!(!scratch.path().join("seg-000100.kseg.tmp").exists());
}

#[test]
fn quarantined_files_survive_the_sweep() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..40).map(rec));
    store.seal();
    store.sync().expect("sync");
    drop(store);

    let segments = live_segments(scratch.path());
    let seg = &segments[0];
    let mut bytes = std::fs::read(seg).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(seg, &bytes).expect("write");

    // First open: corrupt → quarantine + error.
    assert!(TelemetryStore::open(scratch.path()).is_err());
    let quarantined = seg.with_extension("kseg.quarantine");
    assert!(quarantined.exists());

    // The segment is gone, so the second open still fails (Io on the
    // missing file) — but it must not delete the quarantined bytes.
    assert!(TelemetryStore::open(scratch.path()).is_err());
    assert!(quarantined.exists(), "sweep must never remove quarantined files");
}

#[test]
fn empty_store_roundtrip() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    assert!(store.is_empty());
    store.sync().expect("sync of empty store");
    drop(store);
    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert!(reopened.is_empty());
    assert!(reopened.is_durable());
}
