//! Crash-safety suite for the durable telemetry store.
//!
//! The durability contract under test: after reopening a directory
//! written by a process that died at an arbitrary point, every record
//! covered by a completed `sync()` is recovered (checksum-verified),
//! a torn WAL tail is truncated, corrupt segments are quarantined with
//! a typed error — and recovery *never* panics. Agreement is asserted
//! against the flat-scan reference store on every view and kernel, the
//! same machinery as `tests/agreement.rs`.
//!
//! "Process death" is simulated two ways: dropping the store without a
//! final sync (nothing buffers in the store, so a drop *is* a kill
//! between syncs), and truncating / byte-flipping the on-disk files at
//! randomized offsets, which covers a kill mid-`write(2)`.

use kea_telemetry::aggregate::reference as ref_agg;
use kea_telemetry::persist::test_hooks;
use kea_telemetry::store::reference::TelemetryStore as RefStore;
use kea_telemetry::{
    daily_group_aggregates, daily_group_aggregates_window, group_utilization,
    hourly_fleet_series, hourly_fleet_series_window, GroupKey, MachineHourRecord, MachineId,
    Metric, MetricValues, PersistError, ScId, SkuId, TelemetryStore,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The failure-injection hooks in `persist::test_hooks` are process-wide
/// one-slot statics; tests that arm one hold this lock so a concurrently
/// running hook test cannot overwrite the armed injection before it
/// fires.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

fn hook_guard() -> MutexGuard<'static, ()> {
    HOOK_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---- scratch directories ----------------------------------------------

/// A unique scratch directory removed on drop (kept on panic only if the
/// drop never runs, i.e. never — proptest catches the panic first, so
/// cleanup is reliable).
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new() -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "kea-persist-crash-{}-{n}",
            std::process::id()
        ));
        // A stale dir from a previous run with the same pid is removed
        // rather than recovered into.
        let _ = std::fs::remove_dir_all(&dir);
        Scratch { dir }
    }

    fn path(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

// ---- record generation and agreement (as in tests/agreement.rs) -------

const HOURS: [u64; 12] = [0, 1, 2, 5, 23, 24, 47, 48, 49, 120, 121, 500];

fn arb_record() -> impl Strategy<Value = MachineHourRecord> {
    (0u32..6, 0u16..3, 0usize..HOURS.len(), 0.0..100.0f64, 0.0..500.0f64).prop_map(
        |(machine, sku, hour_idx, cpu, tasks)| MachineHourRecord {
            machine: MachineId(machine),
            group: GroupKey::new(SkuId(sku), ScId(1 + (machine % 2) as u8)),
            hour: HOURS[hour_idx % HOURS.len()],
            metrics: MetricValues {
                cpu_utilization: cpu,
                tasks_finished: tasks,
                total_data_read_gb: tasks * 0.5,
                cpu_time_s: cpu * 3.0,
                avg_running_containers: 1.0 + cpu * 0.1,
                ..Default::default()
            },
        },
    )
}

fn record_key(r: &MachineHourRecord) -> (u16, u8, u64, u32, u64, u64) {
    (
        r.group.sku.0,
        r.group.sc.0,
        r.hour,
        r.machine.0,
        r.metrics.tasks_finished.to_bits(),
        r.metrics.cpu_utilization.to_bits(),
    )
}

fn sorted_keys<'a>(
    it: impl Iterator<Item = &'a MachineHourRecord>,
) -> Vec<(u16, u8, u64, u32, u64, u64)> {
    let mut keys: Vec<_> = it.map(record_key).collect();
    keys.sort_unstable();
    keys
}

fn close(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Structural + numeric agreement between the reference store and a
/// (recovered) columnar store, across every view family and kernel.
fn assert_agrees(reference: &RefStore, columnar: &TelemetryStore) {
    assert_eq!(reference.len(), columnar.len());
    assert_eq!(reference.groups(), columnar.groups());
    assert_eq!(reference.machines(), columnar.machines());
    assert_eq!(reference.hour_span(), columnar.hour_span());
    for g in reference.groups() {
        assert_eq!(sorted_keys(reference.by_group(g)), sorted_keys(columnar.by_group(g)));
    }
    for m in reference.machines() {
        assert_eq!(sorted_keys(reference.by_machine(m)), sorted_keys(columnar.by_machine(m)));
    }
    let (lo, hi) = reference.hour_span().unwrap_or((0, 0));
    assert_eq!(
        sorted_keys(reference.by_hours(lo, hi)),
        sorted_keys(columnar.by_hours(lo, hi))
    );

    let ref_daily = ref_agg::daily_group_aggregates(reference);
    let col_daily = daily_group_aggregates(columnar);
    assert_eq!(ref_daily.len(), col_daily.len());
    for (r, c) in ref_daily.iter().zip(&col_daily) {
        assert_eq!((r.group, r.machine, r.day), (c.group, c.machine, c.day));
        assert_eq!(r.hours_observed, c.hours_observed);
        for m in [Metric::CpuUtilization, Metric::NumberOfTasks, Metric::TotalDataRead] {
            assert!(
                close(r.mean(m), c.mean(m)),
                "daily mean of {m} drifted: {} vs {}",
                r.mean(m),
                c.mean(m)
            );
        }
    }
    let r_series = ref_agg::hourly_fleet_series(reference, Metric::CpuUtilization);
    let c_series = hourly_fleet_series(columnar, Metric::CpuUtilization);
    assert_eq!(r_series.len(), c_series.len());
    for ((rh, rv), (ch, cv)) in r_series.iter().zip(&c_series) {
        assert_eq!(rh, ch);
        assert!(close(*rv, *cv), "fleet series at hour {rh} drifted");
    }
    let r_util = ref_agg::group_utilization(reference);
    let c_util = group_utilization(columnar);
    assert_eq!(r_util.len(), c_util.len());
    for (r, c) in r_util.iter().zip(&c_util) {
        assert_eq!((r.group, r.machines), (c.group, c.machines));
        assert!(close(r.mean_cpu_utilization, c.mean_cpu_utilization));
    }

    // Windowed (pruned) paths must agree with the reference predicate
    // scans too — one-day windows at the span's start and middle.
    if let Some((lo, hi)) = reference.hour_span() {
        for ws in [lo, lo + (hi - lo) / 2] {
            let we = ws + 24;
            assert_eq!(
                sorted_keys(reference.by_hours(ws, we)),
                sorted_keys(columnar.by_hours(ws, we))
            );
            let r_daily = ref_agg::daily_group_aggregates_window(reference, ws, we);
            let c_daily = daily_group_aggregates_window(columnar, ws, we);
            assert_eq!(r_daily.len(), c_daily.len());
            for (r, c) in r_daily.iter().zip(&c_daily) {
                assert_eq!((r.group, r.machine, r.day), (c.group, c.machine, c.day));
                assert_eq!(r.hours_observed, c.hours_observed);
                assert!(close(r.mean(Metric::CpuUtilization), c.mean(Metric::CpuUtilization)));
            }
            let r_series =
                ref_agg::hourly_fleet_series_window(reference, Metric::CpuUtilization, ws, we);
            let c_series = hourly_fleet_series_window(columnar, Metric::CpuUtilization, ws, we);
            assert_eq!(r_series.len(), c_series.len());
            for ((rh, rv), (ch, cv)) in r_series.iter().zip(&c_series) {
                assert_eq!(rh, ch);
                assert!(close(*rv, *cv), "windowed fleet series at hour {rh} drifted");
            }
        }
    }
}

/// Reads the live WAL file name out of `dir/MANIFEST` (the documented
/// text format: one `wal <name>` line).
fn live_wal(dir: &Path) -> PathBuf {
    let text = std::fs::read_to_string(dir.join("MANIFEST")).expect("manifest readable");
    for line in text.lines() {
        if let Some(name) = line.strip_prefix("wal ") {
            return dir.join(name);
        }
    }
    panic!("no wal line in manifest: {text:?}");
}

/// Reads the live segment file names out of `dir/MANIFEST`.
fn live_segments(dir: &Path) -> Vec<PathBuf> {
    let text = std::fs::read_to_string(dir.join("MANIFEST")).expect("manifest readable");
    text.lines()
        .filter_map(|l| l.strip_prefix("segment "))
        .filter_map(|rest| rest.split(' ').next())
        .map(|name| dir.join(name))
        .collect()
}

// ---- the crash-point properties ---------------------------------------

/// One mutation step against the durable store. `Sync` is the
/// durability point; `Seal` cuts a new run so the next sync rotates WAL
/// contents into a segment; `Compact` k-way merges overlapping or
/// undersized adjacent runs.
#[derive(Debug, Clone)]
enum Op {
    PushBatch(Vec<MachineHourRecord>),
    Seal,
    Sync,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec(arb_record(), 1..60).prop_map(Op::PushBatch),
        1 => Just(Op::Seal),
        2 => Just(Op::Sync),
        1 => Just(Op::Compact),
    ]
}

proptest! {
    /// Graceful-path agreement: any interleaving of push/seal/sync,
    /// closed with a sync, must reopen into a store that agrees with
    /// the in-memory reference on every view and kernel — and a second
    /// generation of appends on the *reopened* store must too.
    #[test]
    fn reopen_agrees_with_reference(
        ops in proptest::collection::vec(arb_op(), 1..10),
        tail in proptest::collection::vec(arb_record(), 0..40),
    ) {
        let scratch = Scratch::new();
        let mut reference = RefStore::new();
        let mut store = TelemetryStore::open(scratch.path()).expect("open fresh");
        prop_assert!(store.is_durable());
        prop_assert_eq!(store.storage_dir(), Some(scratch.path()));

        for op in &ops {
            match op {
                Op::PushBatch(records) => {
                    reference.extend(records.iter().copied());
                    store.extend(records.iter().copied());
                }
                Op::Seal => store.seal(),
                Op::Sync => {
                    store.sync().expect("sync");
                }
                Op::Compact => store.compact_segments(),
            }
        }
        store.sync().expect("final sync");
        drop(store);

        let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
        assert_agrees(&reference, &reopened);

        // Second generation: keep appending on the recovered store.
        let mut store = reopened;
        reference.extend(tail.iter().copied());
        store.extend(tail.iter().copied());
        store.seal();
        store.sync().expect("sync after reopen");
        drop(store);
        let reopened = TelemetryStore::open(scratch.path()).expect("second reopen");
        assert_agrees(&reference, &reopened);
    }

    /// Kill-point property for the WAL: truncate the live WAL at an
    /// arbitrary byte offset (a crash mid-append) and reopen. The
    /// recovered delta must be an append-order *prefix* of what was
    /// written, every batch closed by a sync *before* the last one must
    /// survive in full, and the recovered store must agree with a
    /// reference over exactly the recovered records.
    #[test]
    fn wal_truncated_at_any_offset_recovers_synced_prefix(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_record(), 1..30), 1..6),
        cut_frac in 0.0..1.0f64,
    ) {
        let scratch = Scratch::new();
        let mut store = TelemetryStore::open(scratch.path()).expect("open fresh");
        let mut appended = Vec::new();
        let mut synced_len = 0usize;
        for batch in &batches {
            store.extend(batch.iter().copied());
            appended.extend_from_slice(batch);
            store.sync().expect("sync");
            synced_len = appended.len();
        }
        // A few unsynced records sit only in memory — lost by design.
        store.extend(batches.iter().flatten().take(3).copied());
        drop(store);

        // Crash mid-write: truncate the WAL at an arbitrary offset.
        let wal = live_wal(scratch.path());
        let full = std::fs::metadata(&wal).expect("wal meta").len();
        let cut = (full as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&wal).expect("open wal");
        f.set_len(cut).expect("truncate");
        drop(f);

        if cut < 8 {
            // A cut inside the magic is not crash-reachable (the magic
            // is fsynced before the manifest ever names the WAL): that
            // is real corruption, and must fail typed — never panic.
            let err = TelemetryStore::open(scratch.path())
                .expect_err("short-magic WAL must not open");
            prop_assert!(matches!(err, PersistError::Corrupt { .. }), "got {err}");
            return;
        }
        let recovered = TelemetryStore::open(scratch.path()).expect("recovery must not fail");
        let got: Vec<MachineHourRecord> = recovered.iter().copied().collect();

        // Recovered records are an append-order prefix of what was
        // appended (frames are atomic: a cut inside frame k drops
        // frames k.. entirely); the unsynced tail never hit disk.
        prop_assert!(got.len() <= appended.len());
        let expect_prefix: Vec<_> = appended.iter().take(got.len()).copied().collect();
        prop_assert_eq!(&got, &expect_prefix, "recovered records are not a prefix");

        // Nothing before the final sync may be lost unless the cut fell
        // before the final frame; a cut at or past `full` loses nothing.
        if cut >= full {
            prop_assert_eq!(got.len(), synced_len);
        }

        // And the recovered store behaves exactly like a fresh store
        // over the recovered records.
        let mut reference = RefStore::new();
        reference.extend(got.iter().copied());
        assert_agrees(&reference, &recovered);
    }

    /// Kill-point property for rotation: seal + sync (spilling a
    /// segment), then flip one byte anywhere in the segment file. The
    /// damage must surface as a typed `Corrupt` error — never a panic —
    /// and quarantine the damaged file. Where it surfaces depends on
    /// where the flip landed: header damage fails `open` itself (the
    /// header is validated eagerly), body damage passes `open` (bodies
    /// decode lazily) and fails `verify()` on the reopened store, which
    /// then refuses to `sync`.
    #[test]
    fn segment_byte_flip_quarantines_with_typed_error(
        records in proptest::collection::vec(arb_record(), 1..80),
        flip_frac in 0.0..1.0f64,
        flip_bit in 0u8..8,
    ) {
        let scratch = Scratch::new();
        let mut store = TelemetryStore::open(scratch.path()).expect("open fresh");
        store.extend(records.iter().copied());
        store.seal();
        store.sync().expect("sync");
        drop(store);

        let segments = live_segments(scratch.path());
        prop_assert_eq!(segments.len(), 1, "seal+sync must spill exactly one segment");
        let seg = &segments[0];
        let mut bytes = std::fs::read(seg).expect("read segment");
        let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[at] ^= 1 << flip_bit;
        std::fs::write(seg, &bytes).expect("write corrupted segment");

        let quarantined = seg.with_extension("kseg.quarantine");
        match TelemetryStore::open(scratch.path()) {
            // Flip landed in the eagerly-validated header region.
            Err(PersistError::Corrupt { path, .. }) => {
                prop_assert_eq!(&path, seg);
                prop_assert!(quarantined.exists(), "corrupt segment not quarantined");
                prop_assert!(!seg.exists());
            }
            Err(other) => prop_assert!(false, "wrong error type: {other}"),
            // Flip landed in the lazily-decoded body: open passes on the
            // intact header, the first decode quarantines and degrades.
            Ok(mut reopened) => {
                let err = reopened.verify().expect_err("body flip must fail verify");
                prop_assert!(matches!(err, PersistError::Corrupt { .. }), "got {err}");
                prop_assert!(quarantined.exists(), "corrupt segment not quarantined");
                prop_assert!(!seg.exists());
                // A degraded store serves the surviving sides (here:
                // nothing) but must refuse to overwrite history.
                prop_assert_eq!(reopened.by_hours(0, u64::MAX).count(), 0);
                prop_assert!(reopened.sync().is_err(), "degraded store must refuse sync");
            }
        }
    }
}

// ---- directed crash/abuse cases ---------------------------------------

fn rec(i: u64) -> MachineHourRecord {
    MachineHourRecord {
        machine: MachineId((i % 11) as u32),
        group: GroupKey::new(SkuId((i % 4) as u16), ScId((i % 2) as u8)),
        hour: i / 11,
        metrics: MetricValues { tasks_finished: i as f64, ..MetricValues::default() },
    }
}

#[test]
fn sync_on_in_memory_store_is_not_durable() {
    let mut store = TelemetryStore::new();
    store.push(rec(1));
    assert!(!store.is_durable());
    assert!(store.storage_dir().is_none());
    assert!(matches!(store.sync(), Err(PersistError::NotDurable)));
}

#[test]
fn clone_of_durable_store_is_detached() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..50).map(rec));
    store.sync().expect("sync");

    let mut clone = store.clone();
    assert!(!clone.is_durable());
    assert!(matches!(clone.sync(), Err(PersistError::NotDurable)));
    // Mutating the clone must not disturb the original's directory.
    clone.extend((50..100).map(rec));
    drop(store);
    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert_eq!(reopened.len(), 50);
}

#[test]
fn unsynced_records_are_lost_synced_records_survive() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..30).map(rec));
    store.sync().expect("sync");
    store.extend((30..60).map(rec)); // never synced — the crash eats these
    drop(store);

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    let got: Vec<_> = reopened.iter().copied().collect();
    let want: Vec<_> = (0..30).map(rec).collect();
    assert_eq!(got, want);
}

#[test]
fn rotation_covers_compaction_spill_and_wal_reset() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    // Past the 1024 auto-compaction threshold: the store compacts on its
    // own, so the next sync must rotate without an explicit seal.
    store.extend((0..2000).map(rec));
    store.sync().expect("sync");
    assert!(!live_segments(scratch.path()).is_empty(), "compaction must spill a segment");
    // The tail past the compaction point rides in the WAL.
    store.extend((2000..2010).map(rec));
    store.sync().expect("tail sync");
    drop(store);

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert_eq!(reopened.len(), 2010);
    let mut reference = RefStore::new();
    reference.extend((0..2010).map(rec));
    assert_agrees(&reference, &reopened);
}

#[test]
fn missing_manifest_with_store_files_is_typed_error() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..1500).map(rec));
    store.seal();
    store.sync().expect("sync");
    drop(store);

    std::fs::remove_file(scratch.path().join("MANIFEST")).expect("remove manifest");
    match TelemetryStore::open(scratch.path()) {
        Err(PersistError::MissingManifest { dir }) => assert_eq!(dir, scratch.path()),
        other => panic!("expected MissingManifest, got {other:?}"),
    }
}

#[test]
fn garbage_manifest_is_corrupt_not_panic() {
    let scratch = Scratch::new();
    std::fs::create_dir_all(scratch.path()).expect("mkdir");
    std::fs::write(scratch.path().join("MANIFEST"), b"\xFF\xFEtotal garbage\n").expect("write");
    assert!(matches!(
        TelemetryStore::open(scratch.path()),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn manifest_path_traversal_is_rejected() {
    let scratch = Scratch::new();
    std::fs::create_dir_all(scratch.path()).expect("mkdir");
    std::fs::write(
        scratch.path().join("MANIFEST"),
        "kea-telemetry-manifest v1\nsegment ../../escape.kseg rows 5\nwal w.wal\n",
    )
    .expect("write");
    assert!(matches!(
        TelemetryStore::open(scratch.path()),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn orphans_from_interrupted_rotation_are_swept() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..10).map(rec));
    store.sync().expect("sync");
    drop(store);

    // Fake the debris of a rotation that died before the manifest flip:
    // a segment nobody references, a stray WAL, a temp file.
    std::fs::write(scratch.path().join("seg-000099.kseg"), b"debris").expect("write");
    std::fs::write(scratch.path().join("wal-000099.wal"), b"debris").expect("write");
    std::fs::write(scratch.path().join("seg-000100.kseg.tmp"), b"debris").expect("write");

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen sweeps orphans");
    assert_eq!(reopened.len(), 10);
    assert!(!scratch.path().join("seg-000099.kseg").exists());
    assert!(!scratch.path().join("wal-000099.wal").exists());
    assert!(!scratch.path().join("seg-000100.kseg.tmp").exists());
}

#[test]
fn quarantined_files_survive_the_sweep() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..40).map(rec));
    store.seal();
    store.sync().expect("sync");
    drop(store);

    let segments = live_segments(scratch.path());
    let seg = &segments[0];
    let mut bytes = std::fs::read(seg).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(seg, &bytes).expect("write");

    // A mid-file flip lands in the lazily-decoded body, so open passes
    // on the intact header; the first decode quarantines the file.
    let reopened = TelemetryStore::open(scratch.path()).expect("open validates headers only");
    assert!(reopened.verify().is_err(), "body corruption must fail verify");
    drop(reopened);
    let quarantined = seg.with_extension("kseg.quarantine");
    assert!(quarantined.exists());

    // The segment is gone, so the next open fails on the missing file —
    // but it must not delete the quarantined bytes.
    assert!(TelemetryStore::open(scratch.path()).is_err());
    assert!(quarantined.exists(), "sweep must never remove quarantined files");
}

#[test]
fn empty_store_roundtrip() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    assert!(store.is_empty());
    store.sync().expect("sync of empty store");
    drop(store);
    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert!(reopened.is_empty());
    assert!(reopened.is_durable());
}

// ---- injected-failure crash points (persist::test_hooks) ---------------

fn rec_at(i: u64, hour: u64) -> MachineHourRecord {
    MachineHourRecord {
        machine: MachineId((i % 11) as u32),
        group: GroupKey::new(SkuId((i % 4) as u16), ScId((i % 2) as u8)),
        hour,
        metrics: MetricValues { tasks_finished: i as f64, ..MetricValues::default() },
    }
}

/// Regression (previously: a retried `sync()` after a WAL fsync failure
/// re-appended every frame of the failed batch, so the retry persisted
/// each record twice and replay duplicated the delta). The retry must
/// recognize the frames already on disk and only repeat the durability
/// barrier.
#[test]
fn failed_wal_fsync_retry_is_idempotent() {
    let _guard = hook_guard();
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..100).map(rec));

    test_hooks::fail_next_wal_sync(scratch.path());
    let err = store.sync().expect_err("injected fsync failure must surface");
    assert!(matches!(err, PersistError::Io { .. }), "got {err}");

    // The caller retries; the batch must land exactly once.
    store.sync().expect("retry after fsync failure");
    drop(store);
    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    let got: Vec<_> = reopened.iter().copied().collect();
    let want: Vec<_> = (0..100).map(rec).collect();
    assert_eq!(got, want, "fsync-failure retry must not duplicate records");
}

/// The torn-frame variant: the append itself dies mid-frame (a crash or
/// ENOSPC partway through `write(2)`). The retry must erase the torn
/// partial frame and append the batch exactly once.
#[test]
fn failed_wal_append_retry_has_no_duplicates_or_torn_frames() {
    let _guard = hook_guard();
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..50).map(rec));
    store.sync().expect("first sync");
    store.extend((50..100).map(rec));

    test_hooks::fail_wal_append_mid_frame(scratch.path(), 20);
    let err = store.sync().expect_err("injected append failure must surface");
    assert!(matches!(err, PersistError::Io { .. }), "got {err}");

    store.sync().expect("retry after torn append");
    drop(store);
    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    let got: Vec<_> = reopened.iter().copied().collect();
    let want: Vec<_> = (0..100).map(rec).collect();
    assert_eq!(got, want, "torn-append retry must not duplicate or drop records");
}

/// Crash between segment spill and manifest flip: the new segments and
/// WAL are on disk but the manifest never renames over. Reopening must
/// serve exactly the previous committed state and sweep the orphans.
#[test]
fn manifest_flip_crash_preserves_previous_state() {
    let _guard = hook_guard();
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..100).map(rec));
    store.sync().expect("commit state A");
    store.extend((100..150).map(rec));
    store.seal(); // next sync must rotate

    test_hooks::fail_next_manifest_flip(scratch.path());
    let err = store.sync().expect_err("injected flip failure must surface");
    assert!(matches!(err, PersistError::Io { .. }), "got {err}");
    drop(store); // crash

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    let got: Vec<_> = reopened.iter().copied().collect();
    let want: Vec<_> = (0..100).map(rec).collect();
    assert_eq!(got, want, "uncommitted rotation must not be visible");
    // The orphaned segment from the dead rotation is gone.
    assert!(live_segments(scratch.path()).is_empty());
    let stray_segments = std::fs::read_dir(scratch.path())
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".kseg"))
        .count();
    assert_eq!(stray_segments, 0, "orphaned segments must be swept");
}

/// The same crash point, but the process survives and retries: the
/// retried sync must converge (regenerating the same segment names,
/// overwriting the debris) and commit everything.
#[test]
fn manifest_flip_failure_retry_converges() {
    let _guard = hook_guard();
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..100).map(rec));
    store.sync().expect("commit state A");
    store.extend((100..150).map(rec));
    store.seal();

    test_hooks::fail_next_manifest_flip(scratch.path());
    assert!(store.sync().is_err());
    store.sync().expect("retry must converge");
    drop(store);

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    let mut reference = RefStore::new();
    reference.extend((0..150).map(rec));
    assert_agrees(&reference, &reopened);
}

// ---- lost-store detection (regression) ---------------------------------

/// Regression (previously: a directory holding only `*.quarantine`
/// debris — every segment condemned, the manifest lost — recovered as
/// an EMPTY FRESH STORE, silently reporting total data loss as a clean
/// slate). Quarantine files are store files; without a manifest next to
/// them the store is damaged, not new.
#[test]
fn quarantine_only_directory_is_missing_manifest_not_fresh() {
    let scratch = Scratch::new();
    std::fs::create_dir_all(scratch.path()).expect("mkdir");
    std::fs::write(
        scratch.path().join("seg-000001.kseg.quarantine"),
        b"condemned bytes",
    )
    .expect("write quarantine file");

    match TelemetryStore::open(scratch.path()) {
        Err(PersistError::MissingManifest { dir }) => assert_eq!(dir, scratch.path()),
        other => panic!("expected MissingManifest, got {other:?}"),
    }
    // The evidence must survive the failed open.
    assert!(scratch.path().join("seg-000001.kseg.quarantine").exists());
}

// ---- v1 manifest compatibility -----------------------------------------

/// A manifest written before per-segment hour bounds existed (v1: bare
/// `segment <name> rows <n>` lines) must open under the v2 reader —
/// segments load eagerly, bounds are derived — and the next sync must
/// upgrade the directory to v2 without rewriting the segment files.
#[test]
fn v1_manifest_opens_and_upgrades_without_segment_rewrite() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..200u64).map(|i| rec_at(i, i / 4)));
    store.seal();
    store.sync().expect("sync");
    drop(store);

    // Rewrite the manifest to the v1 form PR 8 shipped: v1 header, no
    // hours clause. Segment files are format-identical across versions.
    let manifest_path = scratch.path().join("MANIFEST");
    let text = std::fs::read_to_string(&manifest_path).expect("read manifest");
    assert!(text.contains(" hours "), "v2 manifest must record bounds");
    let v1: String = text
        .lines()
        .map(|line| {
            if line.starts_with("kea-telemetry-manifest") {
                "kea-telemetry-manifest v1".to_string()
            } else if line.starts_with("segment ") {
                line.split(' ').take(4).collect::<Vec<_>>().join(" ")
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    std::fs::write(&manifest_path, v1).expect("write v1 manifest");
    let seg_bytes_before =
        std::fs::read(&live_segments(scratch.path())[0]).expect("read segment");

    let mut reopened = TelemetryStore::open(scratch.path()).expect("v1 manifest must open");
    let mut reference = RefStore::new();
    reference.extend((0..200u64).map(|i| rec_at(i, i / 4)));
    assert_agrees(&reference, &reopened);

    // The upgrade sync rewrites manifest + WAL, not the segment.
    let stats = reopened.sync().expect("upgrade sync");
    assert_eq!(stats.segments_written, 0, "upgrade must not rewrite segments");
    let upgraded = std::fs::read_to_string(&manifest_path).expect("read upgraded manifest");
    assert!(upgraded.starts_with("kea-telemetry-manifest v2"));
    assert!(upgraded.contains(" hours "), "upgrade must record bounds");
    let seg_bytes_after =
        std::fs::read(&live_segments(scratch.path())[0]).expect("read segment");
    assert_eq!(seg_bytes_before, seg_bytes_after, "segment bytes must be untouched");

    // And the upgraded directory round-trips.
    drop(reopened);
    let again = TelemetryStore::open(scratch.path()).expect("reopen upgraded");
    assert_agrees(&reference, &again);
}

// ---- multi-segment retention: pruning, laziness, write amplification ---

/// Two disjoint-hour segments: opening validates headers only; an
/// hour-windowed query decodes just the segment whose bounds intersect
/// the window; the LRU cap bounds residency; `verify` forces everything.
#[test]
fn windowed_queries_load_only_intersecting_segments() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    // Elder run strictly larger than the newcomer so the ladder keeps
    // them separate; both at/above the policy floor so sync does too.
    store.extend((0..4500u64).map(|i| rec_at(i, i % 100)));
    store.seal();
    store.extend((0..4200u64).map(|i| rec_at(i, 1000 + i % 100)));
    store.seal();
    let stats = store.sync().expect("sync");
    assert!(stats.rotated);
    assert_eq!(stats.segments_written, 2);
    assert_eq!(live_segments(scratch.path()).len(), 2);
    drop(store);

    let mut reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert_eq!(reopened.run_count(), 2);
    assert_eq!(reopened.resident_runs(), 0, "open must not decode segment bodies");
    // Span comes from the manifest bounds — still nothing decoded.
    assert_eq!(reopened.hour_span(), Some((0, 1100)));
    assert_eq!(reopened.len(), 8700);
    assert_eq!(reopened.resident_runs(), 0);

    // A query over the second segment's hours decodes only it.
    assert_eq!(reopened.by_hours(1000, 1100).count(), 4200);
    assert_eq!(reopened.resident_runs(), 1, "pruned query must decode one segment");
    // The dead zone between the segments touches nothing new.
    assert_eq!(reopened.by_hours(200, 900).count(), 0);
    assert_eq!(reopened.resident_runs(), 1);
    // A full-span query decodes both; verify keeps them valid.
    assert_eq!(reopened.by_hours(0, 1100).count(), 8700);
    assert_eq!(reopened.resident_runs(), 2);
    reopened.verify().expect("both segments intact");

    // Tightening the cache cap evicts down to the budget; the evicted
    // segment reloads transparently on the next touch.
    reopened.set_segment_cache_limit(1);
    assert_eq!(reopened.resident_runs(), 1);
    assert_eq!(reopened.by_hours(0, 100).count(), 4500);
    assert_eq!(reopened.by_hours(1000, 1100).count(), 4200);
}

/// Bounded write amplification: once a large segment is on disk, later
/// small syncs must not rewrite it — the fast path writes only WAL
/// frames, and a rotation spills only the new small run.
#[test]
fn sync_never_rewrites_unchanged_segments() {
    let scratch = Scratch::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    store.extend((0..4500u64).map(|i| rec_at(i, i % 100)));
    store.seal();
    store.extend((0..4200u64).map(|i| rec_at(i, 1000 + i % 100)));
    store.seal();
    store.sync().expect("sync big segments");
    let big_segments = live_segments(scratch.path());
    assert_eq!(big_segments.len(), 2);
    let big_bytes: u64 = big_segments
        .iter()
        .map(|p| std::fs::metadata(p).expect("segment meta").len())
        .sum();

    // Fast path: an appended tail rides the WAL; no segment activity.
    store.extend((0..10u64).map(|i| rec_at(i, 2000)));
    let stats = store.sync().expect("tail sync");
    assert!(!stats.rotated);
    assert_eq!(stats.segments_written, 0);
    assert_eq!(stats.segment_bytes, 0);
    assert_eq!(stats.wal_records, 10);
    assert!(stats.wal_bytes > 0);

    // Rotation path: sealing the 10-row tail spills ONE small segment;
    // the two big ones pass through by name, bytes untouched.
    store.seal();
    let stats = store.sync().expect("rotation sync");
    assert!(stats.rotated);
    assert_eq!(stats.segments_written, 1, "only the new run may be spilled");
    assert!(
        stats.segment_bytes < big_bytes / 10,
        "a 10-row spill must be far smaller than the retained history \
         ({} vs {big_bytes} bytes)",
        stats.segment_bytes
    );
    let after = live_segments(scratch.path());
    assert_eq!(after.len(), 3);
    for big in &big_segments {
        assert!(after.contains(big), "big segment {big:?} must survive by name");
    }
    drop(store);

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert_eq!(reopened.len(), 8710);
}

/// Explicit segment compaction across a reopen: overlapping-bound runs
/// fold into one, the next sync commits the merged segment, and the
/// result still agrees with the reference.
#[test]
fn compact_segments_roundtrips_through_disk() {
    let scratch = Scratch::new();
    let mut reference = RefStore::new();
    let mut store = TelemetryStore::open(scratch.path()).expect("open");
    // Three overlapping-hour batches, sealed + synced separately so the
    // directory accumulates small segments.
    for b in 0..3u64 {
        let batch: Vec<_> = (0..300u64).map(|i| rec_at(b * 1000 + i, i % 50)).collect();
        reference.extend(batch.iter().copied());
        store.extend(batch);
        store.seal();
        store.sync().expect("sync batch");
    }
    store.compact_segments();
    assert_eq!(store.run_count(), 1, "overlapping runs must fold into one");
    store.sync().expect("commit compaction");
    assert_eq!(live_segments(scratch.path()).len(), 1);
    drop(store);

    let reopened = TelemetryStore::open(scratch.path()).expect("reopen");
    assert_eq!(reopened.run_count(), 1);
    assert_agrees(&reference, &reopened);
}
