//! Property-based tests for telemetry aggregation: conservation laws
//! that must hold for any record stream.

use kea_telemetry::{
    daily_group_aggregates, GroupKey, MachineHourRecord, MachineId, Metric, MetricValues, ScId,
    SkuId, TelemetryStore,
};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = MachineHourRecord> {
    (
        0u32..8,
        0u16..3,
        0u64..72,
        0.0..100.0f64,
        0.0..40.0f64,
        0.0..500.0f64,
    )
        .prop_map(|(machine, sku, hour, cpu, containers, tasks)| MachineHourRecord {
            machine: MachineId(machine),
            group: GroupKey::new(SkuId(sku), ScId(1)),
            hour,
            metrics: MetricValues {
                cpu_utilization: cpu,
                avg_running_containers: containers,
                tasks_finished: tasks,
                ..Default::default()
            },
        })
}

proptest! {
    #[test]
    fn daily_aggregates_conserve_totals(records in prop::collection::vec(arb_record(), 1..200)) {
        let mut store = TelemetryStore::new();
        store.extend(records.iter().copied());
        let daily = daily_group_aggregates(&store);
        // Conservation: Σ (mean·hours) over aggregates == Σ raw values.
        let raw_tasks: f64 = records.iter().map(|r| r.metrics.tasks_finished).sum();
        let agg_tasks: f64 = daily
            .iter()
            .map(|a| a.mean(Metric::NumberOfTasks) * a.hours_observed as f64)
            .sum();
        prop_assert!((raw_tasks - agg_tasks).abs() < 1e-6 * raw_tasks.max(1.0));
        // Each (machine, group, day) appears exactly once.
        let mut keys: Vec<_> = daily.iter().map(|a| (a.group, a.machine, a.day)).collect();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(before, keys.len());
    }

    #[test]
    fn store_filters_partition_records(records in prop::collection::vec(arb_record(), 1..200)) {
        let mut store = TelemetryStore::new();
        store.extend(records.iter().copied());
        // Group filters partition the store.
        let by_groups: usize = store.groups().iter().map(|g| store.by_group(*g).count()).sum();
        prop_assert_eq!(by_groups, store.len());
        // Machine filters partition the store.
        let by_machines: usize = store.machines().iter().map(|m| store.by_machine(*m).count()).sum();
        prop_assert_eq!(by_machines, store.len());
        // Hour-span covers everything.
        let (lo, hi) = store.hour_span().unwrap();
        prop_assert_eq!(store.by_hours(lo, hi).count(), store.len());
    }
}
