//! Agreement suite: the columnar indexed store and its fused kernels must
//! reproduce the pre-columnar reference implementations bit-for-bit on
//! structure and to 1e-9 on floating-point aggregates, for *any* record
//! stream — including shuffled insertion orders, duplicate
//! `(machine, hour)` rows, and sparse hour domains.
//!
//! The reference store ([`kea_telemetry::store::reference`]) and reference
//! roll-ups ([`kea_telemetry::aggregate::reference`]) are the executable
//! specification here, the same pattern as `optimizer::reference` /
//! `simplex::reference` in the optimizer crates.

use kea_telemetry::aggregate::reference as ref_agg;
use kea_telemetry::store::reference::TelemetryStore as RefStore;
use kea_telemetry::{
    daily_group_aggregates, group_summary, group_utilization, hourly_fleet_series, GroupKey,
    MachineHourRecord, MachineId, Metric, MetricValues, ScId, SkuId, TelemetryStore,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Sparse hour domain: three disjoint bands with gaps between and inside,
/// so fleet series must zero-fill and day roll-ups see partial days.
const HOURS: [u64; 12] = [0, 1, 2, 5, 23, 24, 47, 48, 49, 120, 121, 500];

fn arb_record() -> impl Strategy<Value = MachineHourRecord> {
    (
        0u32..6,
        0u16..3,
        0usize..HOURS.len(),
        0.0..100.0f64,
        0.0..40.0f64,
        0.0..500.0f64,
        0.0..900.0f64,
        0.0..3000.0f64,
    )
        .prop_map(
            |(machine, sku, hour_idx, cpu, containers, tasks, data, exec)| MachineHourRecord {
                machine: MachineId(machine),
                group: GroupKey::new(SkuId(sku), ScId(1 + (machine % 2) as u8)),
                hour: HOURS[hour_idx % HOURS.len()],
                metrics: MetricValues {
                    cpu_utilization: cpu,
                    avg_running_containers: containers,
                    tasks_finished: tasks,
                    total_data_read_gb: data,
                    task_exec_time_s: exec,
                    cpu_time_s: exec * 0.5,
                    avg_task_latency_s: cpu * 0.1,
                    power_draw_w: 200.0 + cpu,
                    ..Default::default()
                },
            },
        )
}

/// Total order over records so view outputs can be compared as multisets
/// (duplicate `(machine, hour)` rows are legal and must all survive).
fn record_key(r: &MachineHourRecord) -> (u16, u8, u64, u32, u64, u64) {
    (
        r.group.sku.0,
        r.group.sc.0,
        r.hour,
        r.machine.0,
        r.metrics.tasks_finished.to_bits(),
        r.metrics.cpu_utilization.to_bits(),
    )
}

fn sorted_keys<'a>(
    it: impl Iterator<Item = &'a MachineHourRecord>,
) -> Vec<(u16, u8, u64, u32, u64, u64)> {
    let mut keys: Vec<_> = it.map(record_key).collect();
    keys.sort_unstable();
    keys
}

fn close(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Builds the reference store in generation order and the columnar store
/// from a seed-shuffled copy of the same records.
fn build_pair(records: &[MachineHourRecord], seed: u64) -> (RefStore, TelemetryStore) {
    let mut reference = RefStore::new();
    reference.extend(records.iter().copied());
    let mut shuffled = records.to_vec();
    shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut columnar = TelemetryStore::new();
    columnar.extend(shuffled);
    (reference, columnar)
}

const METRICS: [Metric; 4] = [
    Metric::CpuUtilization,
    Metric::NumberOfTasks,
    Metric::TotalDataRead,
    Metric::BytesPerSecond,
];

proptest! {
    #[test]
    fn views_agree_with_reference(
        records in prop::collection::vec(arb_record(), 0..220),
        seed in 0u64..1 << 32,
    ) {
        let (reference, columnar) = build_pair(&records, seed);
        prop_assert_eq!(reference.len(), columnar.len());
        prop_assert_eq!(reference.groups(), columnar.groups());
        prop_assert_eq!(reference.machines(), columnar.machines());
        prop_assert_eq!(reference.hour_span(), columnar.hour_span());

        for g in reference.groups() {
            prop_assert_eq!(sorted_keys(reference.by_group(g)), sorted_keys(columnar.by_group(g)));
        }
        for m in reference.machines() {
            prop_assert_eq!(sorted_keys(reference.by_machine(m)), sorted_keys(columnar.by_machine(m)));
        }
        // Hour windows: the full span, a sub-window, and an empty window.
        let (lo, hi) = reference.hour_span().unwrap_or((0, 0));
        for (a, b) in [(lo, hi), (lo + 1, lo + 30), (hi + 10, hi + 20)] {
            prop_assert_eq!(
                sorted_keys(reference.by_hours(a, b)),
                sorted_keys(columnar.by_hours(a, b))
            );
        }
        // Machine-set probe: even-id machines over a mid window.
        let evens: BTreeSet<MachineId> = reference
            .machines()
            .into_iter()
            .filter(|m| m.0 % 2 == 0)
            .collect();
        prop_assert_eq!(
            sorted_keys(reference.by_machines_and_hours(&evens, lo, lo + 49)),
            sorted_keys(columnar.by_machines_and_hours(&evens, lo, lo + 49))
        );
    }

    #[test]
    fn kernels_agree_with_reference(
        records in prop::collection::vec(arb_record(), 0..220),
        seed in 0u64..1 << 32,
    ) {
        let (reference, columnar) = build_pair(&records, seed);

        let ref_daily = ref_agg::daily_group_aggregates(&reference);
        let col_daily = daily_group_aggregates(&columnar);
        prop_assert_eq!(ref_daily.len(), col_daily.len());
        for (r, c) in ref_daily.iter().zip(&col_daily) {
            prop_assert_eq!(r.group, c.group);
            prop_assert_eq!(r.machine, c.machine);
            prop_assert_eq!(r.day, c.day);
            prop_assert_eq!(r.hours_observed, c.hours_observed);
            for m in Metric::ALL {
                prop_assert!(
                    close(r.mean(m), c.mean(m)),
                    "daily mean of {} drifted: {} vs {}", m, r.mean(m), c.mean(m)
                );
            }
        }

        for g in reference.groups() {
            for m in METRICS {
                let r = ref_agg::group_summary(&reference, g, m);
                let c = group_summary(&columnar, g, m);
                match (r, c) {
                    (Some(r), Some(c)) => {
                        prop_assert_eq!(r.count, c.count);
                        prop_assert!(close(r.mean, c.mean));
                        prop_assert!(close(r.stddev, c.stddev));
                        prop_assert!(close(r.min, c.min));
                        prop_assert!(close(r.max, c.max));
                        prop_assert!(close(r.median, c.median));
                    }
                    (None, None) => {}
                    (r, c) => prop_assert!(false, "summary presence drifted: {:?} vs {:?}", r, c),
                }
            }
        }

        for m in METRICS {
            let r = ref_agg::hourly_fleet_series(&reference, m);
            let c = hourly_fleet_series(&columnar, m);
            prop_assert_eq!(r.len(), c.len());
            for ((rh, rv), (ch, cv)) in r.iter().zip(&c) {
                prop_assert_eq!(rh, ch);
                prop_assert!(close(*rv, *cv), "fleet series at hour {} drifted", rh);
            }
        }

        let r = ref_agg::group_utilization(&reference);
        let c = group_utilization(&columnar);
        prop_assert_eq!(r.len(), c.len());
        for (r, c) in r.iter().zip(&c) {
            prop_assert_eq!(r.group, c.group);
            prop_assert_eq!(r.machines, c.machines);
            prop_assert!(close(r.mean_cpu_utilization, c.mean_cpu_utilization));
            prop_assert!(close(r.mean_running_containers, c.mean_running_containers));
        }
    }

    #[test]
    fn sealed_queries_equal_lazy_queries(
        records in prop::collection::vec(arb_record(), 1..160),
    ) {
        // Regression guard: an explicit `seal()` must change nothing about
        // query results relative to a store that seals lazily on first
        // query, and appending after a seal must transparently re-index.
        let mut eager = TelemetryStore::new();
        eager.extend(records.iter().copied());
        eager.seal();
        prop_assert!(eager.is_sealed());
        let mut lazy = TelemetryStore::new();
        lazy.extend(records.iter().copied());

        prop_assert_eq!(eager.hour_span(), lazy.hour_span());
        for g in eager.groups() {
            prop_assert_eq!(sorted_keys(eager.by_group(g)), sorted_keys(lazy.by_group(g)));
        }
        let ed = daily_group_aggregates(&eager);
        let ld = daily_group_aggregates(&lazy);
        prop_assert_eq!(ed.len(), ld.len());
        for (e, l) in ed.iter().zip(&ld) {
            prop_assert_eq!((e.group, e.machine, e.day), (l.group, l.machine, l.day));
            prop_assert!(close(e.mean(Metric::NumberOfTasks), l.mean(Metric::NumberOfTasks)));
        }

        // Append after seal: equal to a store built with all records.
        let extra = MachineHourRecord {
            machine: MachineId(99),
            group: GroupKey::new(SkuId(9), ScId(9)),
            hour: 7,
            metrics: MetricValues { tasks_finished: 3.0, ..Default::default() },
        };
        let mut appended = eager;
        appended.push(extra);
        prop_assert!(!appended.is_sealed());
        let mut rebuilt = TelemetryStore::new();
        rebuilt.extend(records.iter().copied());
        rebuilt.push(extra);
        prop_assert_eq!(appended.groups(), rebuilt.groups());
        prop_assert_eq!(
            sorted_keys(appended.by_group(extra.group)),
            sorted_keys(rebuilt.by_group(extra.group))
        );
        prop_assert_eq!(
            daily_group_aggregates(&appended).len(),
            daily_group_aggregates(&rebuilt).len()
        );
    }
}

// ---- interleaved mutate/query sequences --------------------------------

/// One step of an interleaved mutation sequence. `Merge` carries the
/// records for a sub-store that is built (and possibly sealed) on the
/// side and then merged in; `Seal` forces a compaction of the delta.
#[derive(Debug, Clone)]
enum Op {
    PushBatch(Vec<MachineHourRecord>),
    Merge(Vec<MachineHourRecord>, bool),
    Seal,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec(arb_record(), 1..40).prop_map(Op::PushBatch),
        3 => (prop::collection::vec(arb_record(), 1..40), any::<bool>())
            .prop_map(|(rs, sealed)| Op::Merge(rs, sealed)),
        1 => Just(Op::Seal),
    ]
}

/// Full structural + numeric comparison, usable after every intermediate
/// mutation — not just at the end of a sequence. Panics on divergence,
/// which the surrounding `proptest!` loop reports with the failing inputs.
fn assert_agrees(reference: &RefStore, columnar: &TelemetryStore) {
    prop_assert_eq!(reference.len(), columnar.len());
    prop_assert_eq!(reference.groups(), columnar.groups());
    prop_assert_eq!(reference.machines(), columnar.machines());
    prop_assert_eq!(reference.hour_span(), columnar.hour_span());
    for g in reference.groups() {
        prop_assert_eq!(sorted_keys(reference.by_group(g)), sorted_keys(columnar.by_group(g)));
    }
    for m in reference.machines() {
        prop_assert_eq!(sorted_keys(reference.by_machine(m)), sorted_keys(columnar.by_machine(m)));
    }
    let (lo, hi) = reference.hour_span().unwrap_or((0, 0));
    prop_assert_eq!(
        sorted_keys(reference.by_hours(lo, hi)),
        sorted_keys(columnar.by_hours(lo, hi))
    );
    let evens: BTreeSet<MachineId> = reference
        .machines()
        .into_iter()
        .filter(|m| m.0 % 2 == 0)
        .collect();
    prop_assert_eq!(
        sorted_keys(reference.by_machines_and_hours(&evens, lo, lo + 49)),
        sorted_keys(columnar.by_machines_and_hours(&evens, lo, lo + 49))
    );

    let ref_daily = ref_agg::daily_group_aggregates(reference);
    let col_daily = daily_group_aggregates(columnar);
    prop_assert_eq!(ref_daily.len(), col_daily.len());
    for (r, c) in ref_daily.iter().zip(&col_daily) {
        prop_assert_eq!((r.group, r.machine, r.day), (c.group, c.machine, c.day));
        prop_assert_eq!(r.hours_observed, c.hours_observed);
        for m in METRICS {
            prop_assert!(
                close(r.mean(m), c.mean(m)),
                "daily mean of {} drifted: {} vs {}", m, r.mean(m), c.mean(m)
            );
        }
    }
    let r_series = ref_agg::hourly_fleet_series(reference, Metric::CpuUtilization);
    let c_series = hourly_fleet_series(columnar, Metric::CpuUtilization);
    prop_assert_eq!(r_series.len(), c_series.len());
    for ((rh, rv), (ch, cv)) in r_series.iter().zip(&c_series) {
        prop_assert_eq!(rh, ch);
        prop_assert!(close(*rv, *cv), "fleet series at hour {} drifted", rh);
    }
    let r_util = ref_agg::group_utilization(reference);
    let c_util = group_utilization(columnar);
    prop_assert_eq!(r_util.len(), c_util.len());
    for (r, c) in r_util.iter().zip(&c_util) {
        prop_assert_eq!((r.group, r.machines), (c.group, c.machines));
        prop_assert!(close(r.mean_cpu_utilization, c.mean_cpu_utilization));
        prop_assert!(close(r.mean_running_containers, c.mean_running_containers));
    }
    for g in reference.groups() {
        match (
            ref_agg::group_summary(reference, g, Metric::NumberOfTasks),
            group_summary(columnar, g, Metric::NumberOfTasks),
        ) {
            (Some(r), Some(c)) => {
                prop_assert_eq!(r.count, c.count);
                prop_assert!(close(r.mean, c.mean));
                prop_assert!(close(r.median, c.median));
            }
            (None, None) => {}
            (r, c) => prop_assert!(false, "summary presence drifted: {:?} vs {:?}", r, c),
        }
    }
}

proptest! {
    /// The run+delta store must agree with the reference at *every
    /// intermediate state* of an interleaved push → query → merge →
    /// query → seal → query sequence, not just after the final seal.
    /// The narrow machine/hour domain guarantees duplicate
    /// `(machine, hour)` rows land in the delta while twins of the same
    /// keys sit in the sealed run.
    #[test]
    fn interleaved_mutations_agree_with_reference(
        ops in prop::collection::vec(arb_op(), 1..8),
        seed in 0u64..1 << 32,
    ) {
        let mut reference = RefStore::new();
        let mut columnar = TelemetryStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        // `ops` stays borrowed so the harness can print it if a case fails.
        for op in ops.iter().cloned() {
            match op {
                Op::PushBatch(records) => {
                    let mut shuffled = records.clone();
                    shuffled.shuffle(&mut rng);
                    for r in &records {
                        reference.push(*r);
                    }
                    for r in shuffled {
                        columnar.push(r);
                    }
                }
                Op::Merge(records, seal_other) => {
                    let mut ref_other = RefStore::new();
                    ref_other.extend(records.iter().copied());
                    let mut col_other = TelemetryStore::new();
                    let mut shuffled = records.clone();
                    shuffled.shuffle(&mut rng);
                    col_other.extend(shuffled);
                    if seal_other {
                        col_other.seal();
                    }
                    reference.merge(ref_other);
                    columnar.merge(col_other);
                }
                Op::Seal => {
                    columnar.seal();
                    prop_assert!(columnar.is_sealed());
                    prop_assert_eq!(columnar.delta_len(), 0);
                }
            }
            assert_agrees(&reference, &columnar);
        }
        // Close with a seal: compaction must not disturb anything.
        columnar.seal();
        assert_agrees(&reference, &columnar);
    }
}

#[test]
fn empty_store_agrees_with_reference() {
    let reference = RefStore::new();
    let columnar = TelemetryStore::new();
    assert_eq!(reference.hour_span(), columnar.hour_span());
    assert_eq!(reference.groups(), columnar.groups());
    assert_eq!(reference.machines(), columnar.machines());
    assert!(ref_agg::daily_group_aggregates(&reference).is_empty());
    assert!(daily_group_aggregates(&columnar).is_empty());
    assert!(ref_agg::hourly_fleet_series(&reference, Metric::CpuUtilization).is_empty());
    assert!(hourly_fleet_series(&columnar, Metric::CpuUtilization).is_empty());
    assert!(ref_agg::group_utilization(&reference).is_empty());
    assert!(group_utilization(&columnar).is_empty());
    assert!(
        group_summary(&columnar, GroupKey::new(SkuId(0), ScId(0)), Metric::CpuUtilization)
            .is_none()
    );
}
