//! Property-based tests for the regression stack.

use kea_ml::{HuberRegressor, LinearRegression, Matrix, Regressor};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ols_recovers_exact_lines(
        intercept in -100.0..100.0f64,
        slope in -50.0..50.0f64,
        n in 3usize..40,
    ) {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| intercept + slope * i as f64).collect();
        let m = LinearRegression::fit(&x, &y).unwrap();
        prop_assert!((m.intercept() - intercept).abs() < 1e-6 * intercept.abs().max(1.0));
        prop_assert!((m.coefficients()[0] - slope).abs() < 1e-6 * slope.abs().max(1.0));
    }

    #[test]
    fn huber_recovers_lines_despite_planted_outliers(
        intercept in -10.0..10.0f64,
        slope in 0.1..10.0f64,
        outlier in 100.0..1000.0f64,
    ) {
        let n = 60;
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.5]).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let base = intercept + slope * i as f64 * 0.5
                    + ((i * 13) % 7) as f64 * 0.01; // tiny noise for scale
                if i % 12 == 5 { base + outlier } else { base }
            })
            .collect();
        let m = HuberRegressor::fit(&x, &y).unwrap();
        prop_assert!(
            (m.coefficients()[0] - slope).abs() < 0.05 * slope.max(1.0),
            "slope {} vs true {}", m.coefficients()[0], slope
        );
    }

    #[test]
    fn matrix_solve_has_small_residual(
        seed in 0u64..500,
        n in 2usize..6,
    ) {
        // Diagonally dominant systems are well-conditioned.
        let mut rows = Vec::new();
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) * 2.0 - 1.0
        };
        for i in 0..n {
            let mut row: Vec<f64> = (0..n).map(|_| next()).collect();
            row[i] += n as f64 + 1.0;
            rows.push(row);
        }
        let b: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let a = Matrix::from_rows(&rows).unwrap();
        let x = a.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-8, "residual {} vs {}", got, want);
        }
    }

    #[test]
    fn prediction_is_affine_in_features(
        intercept in -5.0..5.0f64,
        c0 in -5.0..5.0f64,
        c1 in -5.0..5.0f64,
        x0 in -100.0..100.0f64,
        x1 in -100.0..100.0f64,
    ) {
        let m = LinearRegression::from_parameters(intercept, vec![c0, c1]);
        let direct = m.predict_row(&[x0, x1]);
        prop_assert!((direct - (intercept + c0 * x0 + c1 * x1)).abs() < 1e-9);
        // Affinity: doubling features doubles the non-intercept part.
        let doubled = m.predict_row(&[2.0 * x0, 2.0 * x1]);
        prop_assert!(((doubled - intercept) - 2.0 * (direct - intercept)).abs() < 1e-6);
    }
}
