//! From-scratch regression models for KEA's What-if Engine.
//!
//! The paper (§5.1) uses "regression models as the predictors, such as
//! linear regression (LR), support vector machines (SVM), or deep neural
//! nets (DNN). Linear models are more explainable, which is critical for
//! domain experts", and §5.2.1 specifically uses a **Huber Regressor**
//! because it is "more robust to outliers compared to the Least Squares
//! Regression". This crate provides exactly that toolbox:
//!
//! * [`matrix`] — a small dense row-major matrix with a partial-pivoting
//!   linear solver (all KEA models are tiny: a handful of coefficients per
//!   machine group).
//! * [`linreg`] — ordinary least squares and ridge regression via the
//!   normal equations.
//! * [`huber`] — the Huber robust regressor fitted with iteratively
//!   reweighted least squares (IRLS) and a MAD scale estimate.
//! * [`mod@line`] — the univariate [`line::LinearModel1D`] used for the paper's
//!   `g_k`, `h_k`, `f_k`, `p`, `q` models, with an exact inverse (needed by
//!   the Monte-Carlo SKU-design optimizer, §6.1).
//! * [`mlp`] — a one-hidden-layer neural regressor, the "DNN" option of
//!   §5.1 for genuinely curved relationships (the engine still defaults
//!   to linear models for the paper's explainability reason).
//! * [`features`] — polynomial expansion and standardization.
//! * [`metrics`] — R², RMSE, MAE, MAPE.
//! * [`validate`] — seeded train/test splits and k-fold cross-validation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod features;
pub mod huber;
pub mod line;
pub mod linreg;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod validate;

pub use error::MlError;
pub use huber::HuberRegressor;
pub use line::LinearModel1D;
pub use linreg::{LinearRegression, RidgeRegression};
pub use matrix::Matrix;
pub use metrics::{mae, mape, r2_score, rmse};
pub use mlp::{MlpConfig, MlpRegressor};

/// A fitted regression model mapping a feature row to a prediction.
///
/// KEA's What-if Engine treats every calibrated model uniformly through this
/// trait, so the optimizer can compose `g_k`, `h_k`, `f_k` without caring
/// which estimator produced them.
pub trait Regressor {
    /// Predicts the target for one feature row (without intercept column;
    /// the model handles its own intercept).
    fn predict_row(&self, features: &[f64]) -> f64;

    /// Predicts a batch; default implementation maps [`Self::predict_row`].
    fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }
}
