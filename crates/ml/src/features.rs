//! Feature transforms: polynomial expansion and standardization.
//!
//! The latency-vs-utilization relationship (`f_k`) curves upward near
//! saturation; a degree-2 polynomial feature on top of a linear estimator
//! captures that without giving up explainability.

use crate::error::MlError;

/// Expands univariate inputs into polynomial features
/// `[x, x², …, x^degree]` (no constant column — estimators add their own
/// intercept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolynomialFeatures {
    degree: usize,
}

impl PolynomialFeatures {
    /// Creates an expansion of the given degree (≥ 1).
    ///
    /// # Errors
    /// Degree zero would duplicate the intercept and is rejected.
    pub fn new(degree: usize) -> Result<Self, MlError> {
        if degree == 0 {
            return Err(MlError::InvalidParameter("degree must be at least 1"));
        }
        Ok(PolynomialFeatures { degree })
    }

    /// The expansion degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Transforms a batch of scalar inputs into feature rows.
    pub fn transform(&self, x: &[f64]) -> Vec<Vec<f64>> {
        x.iter().map(|&v| self.transform_one(v)).collect()
    }

    /// Transforms one scalar input.
    pub fn transform_one(&self, x: f64) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.degree);
        let mut acc = 1.0;
        for _ in 0..self.degree {
            acc *= x;
            row.push(acc);
        }
        row
    }
}

/// Column-wise standardizer `(x − mean) / std`.
///
/// Columns with zero variance are mapped to zero rather than dividing by
/// zero (they carry no information for a linear model).
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on training rows.
    ///
    /// # Errors
    /// Rows must be non-empty, rectangular, and finite.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self, MlError> {
        // kea-lint: allow(index-in-library) — short-circuit: rows[0] only evaluated when non-empty
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MlError::InvalidParameter("scaler input must be non-empty"));
        }
        let p = rows[0].len(); // kea-lint: allow(index-in-library) — emptiness handled by the early return above
        if rows.iter().any(|r| r.len() != p) {
            return Err(MlError::InvalidParameter("ragged rows"));
        }
        if rows.iter().flatten().any(|v| !v.is_finite()) {
            return Err(MlError::NonFiniteInput);
        }
        let n = rows.len() as f64;
        let mut means = vec![0.0; p];
        for r in rows {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; p];
        for r in rows {
            for ((var, v), m) in vars.iter_mut().zip(r).zip(&means) {
                let d = v - m;
                *var += d * d;
            }
        }
        let stds = vars.iter().map(|v| (v / n).sqrt()).collect();
        Ok(StandardScaler { means, stds })
    }

    /// Per-column means learned at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations learned at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardizes a batch of rows.
    ///
    /// # Errors
    /// Rows must have the fitted width.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        rows.iter().map(|r| self.transform_one(r)).collect()
    }

    /// Standardizes a single row.
    ///
    /// # Errors
    /// The row must have the fitted width.
    pub fn transform_one(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::InvalidParameter("row width mismatch"));
        }
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| if *s == 0.0 { 0.0 } else { (v - m) / s })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_degree_two() {
        let p = PolynomialFeatures::new(2).unwrap();
        assert_eq!(p.transform_one(3.0), vec![3.0, 9.0]);
        assert_eq!(p.transform(&[2.0, -1.0]), vec![vec![2.0, 4.0], vec![-1.0, 1.0]]);
    }

    #[test]
    fn polynomial_degree_one_is_identity_ish() {
        let p = PolynomialFeatures::new(1).unwrap();
        assert_eq!(p.transform_one(5.0), vec![5.0]);
    }

    #[test]
    fn polynomial_rejects_degree_zero() {
        assert!(PolynomialFeatures::new(0).is_err());
    }

    #[test]
    fn polynomial_enables_quadratic_fit() {
        use crate::linreg::LinearRegression;
        use crate::Regressor;
        // y = 1 + 2x + 0.5x²
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x + 0.5 * x * x).collect();
        let p = PolynomialFeatures::new(2).unwrap();
        let m = LinearRegression::fit(&p.transform(&xs), &ys).unwrap();
        assert!((m.intercept() - 1.0).abs() < 1e-7);
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-7);
        assert!((m.coefficients()[1] - 0.5).abs() < 1e-7);
        assert!((m.predict_row(&p.transform_one(10.0)) - 71.0).abs() < 1e-6);
    }

    #[test]
    fn scaler_standardizes_to_zero_mean_unit_var() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 100.0 + 2.0 * i as f64]).collect();
        let s = StandardScaler::fit(&rows).unwrap();
        let t = s.transform(&rows).unwrap();
        for col in 0..2 {
            let mean: f64 = t.iter().map(|r| r[col]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.iter().map(|r| r[col] * r[col]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_constant_column_maps_to_zero() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let s = StandardScaler::fit(&rows).unwrap();
        let t = s.transform_one(&[5.0, 2.0]).unwrap();
        assert_eq!(t[0], 0.0);
    }

    #[test]
    fn scaler_rejects_bad_input() {
        assert!(StandardScaler::fit(&[]).is_err());
        assert!(StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(StandardScaler::fit(&[vec![f64::INFINITY]]).is_err());
        let s = StandardScaler::fit(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(s.transform_one(&[1.0, 2.0]).is_err());
    }
}
