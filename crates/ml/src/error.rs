//! Error type for model fitting.

use std::fmt;

/// Errors raised while building or fitting a model.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Feature matrix and target vector disagree on the number of rows.
    ShapeMismatch {
        /// Rows in the feature matrix.
        x_rows: usize,
        /// Entries in the target vector.
        y_len: usize,
    },
    /// Feature rows disagree on width (the design matrix is ragged).
    RaggedRows {
        /// Width of the first row.
        expected: usize,
        /// Index of the first offending row.
        row: usize,
        /// That row's width.
        actual: usize,
    },
    /// Not enough observations to identify the coefficients.
    InsufficientData {
        /// Observations required (≥ number of coefficients).
        required: usize,
        /// Observations provided.
        actual: usize,
    },
    /// The normal-equations system was singular (e.g. perfectly collinear
    /// features or a constant regressor next to the intercept).
    SingularSystem,
    /// Input contained NaN or infinity.
    NonFiniteInput,
    /// A hyper-parameter was out of range (message explains which).
    InvalidParameter(&'static str),
    /// IRLS failed to converge within the iteration budget.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch { x_rows, y_len } => {
                write!(f, "shape mismatch: X has {x_rows} rows but y has {y_len}")
            }
            MlError::RaggedRows {
                expected,
                row,
                actual,
            } => {
                write!(
                    f,
                    "ragged feature rows: row {row} has {actual} features, expected {expected}"
                )
            }
            MlError::InsufficientData { required, actual } => {
                write!(f, "need at least {required} observations, got {actual}")
            }
            MlError::SingularSystem => write!(f, "normal equations are singular"),
            MlError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            MlError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            MlError::DidNotConverge { iterations } => {
                write!(f, "IRLS did not converge within {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for MlError {}

/// Validates that every feature row has the same width as the first,
/// returning that width. Estimators call this before building a design
/// matrix, so a ragged input surfaces as [`MlError::RaggedRows`] instead
/// of an index panic deep in the solver.
pub(crate) fn check_rectangular(x_rows: &[Vec<f64>]) -> Result<usize, MlError> {
    let expected = x_rows.first().map_or(0, |r| r.len());
    for (row, r) in x_rows.iter().enumerate().skip(1) {
        if r.len() != expected {
            return Err(MlError::RaggedRows {
                expected,
                row,
                actual: r.len(),
            });
        }
    }
    Ok(expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MlError::ShapeMismatch { x_rows: 3, y_len: 4 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("4"));
        assert!(MlError::SingularSystem.to_string().contains("singular"));
    }
}
