//! Univariate linear models with exact inverses.
//!
//! Every calibrated model in the paper's equations (1)–(6) and (11)–(12) is
//! a univariate map between two machine-group metrics: containers → CPU
//! utilization (`g_k`), utilization → tasks/hour (`h_k`), utilization →
//! task latency (`f_k`), cores → SSD (`p`), cores → RAM (`q`). The SKU
//! design optimizer additionally needs the inverse maps `p⁻¹`, `q⁻¹`
//! (§6.1, step 2). [`LinearModel1D`] packages a fitted line with its
//! inverse and provenance.

use crate::error::MlError;
use crate::huber::HuberRegressor;
use crate::linreg::LinearRegression;
use crate::Regressor;

/// Which estimator produced a [`LinearModel1D`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Ordinary least squares.
    Ols,
    /// Huber robust regression (the paper's default for the What-if Engine).
    Huber,
    /// Parameters supplied directly rather than fitted.
    Manual,
}

/// A univariate linear model `y = intercept + slope·x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel1D {
    intercept: f64,
    slope: f64,
    estimator: Estimator,
    n_obs: usize,
}

impl LinearModel1D {
    /// Fits by OLS.
    ///
    /// # Errors
    /// Needs at least two finite observations with varying `x`.
    pub fn fit_ols(x: &[f64], y: &[f64]) -> Result<Self, MlError> {
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let m = LinearRegression::fit(&rows, y)?;
        Ok(LinearModel1D {
            intercept: m.intercept(),
            slope: m.coefficients()[0], // kea-lint: allow(index-in-library) — degree-1 fit always has one coefficient
            estimator: Estimator::Ols,
            n_obs: x.len(),
        })
    }

    /// Fits by Huber robust regression (the paper's choice, §5.2.1).
    ///
    /// # Errors
    /// Same as [`LinearModel1D::fit_ols`], plus IRLS convergence failures.
    pub fn fit_huber(x: &[f64], y: &[f64]) -> Result<Self, MlError> {
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let m = HuberRegressor::fit(&rows, y)?;
        Ok(LinearModel1D {
            intercept: m.intercept(),
            slope: m.coefficients()[0], // kea-lint: allow(index-in-library) — degree-1 fit always has one coefficient
            estimator: Estimator::Huber,
            n_obs: x.len(),
        })
    }

    /// Builds a model from known parameters.
    pub fn from_parameters(intercept: f64, slope: f64) -> Self {
        LinearModel1D {
            intercept,
            slope,
            estimator: Estimator::Manual,
            n_obs: 0,
        }
    }

    /// Intercept (`α` in the paper's Equations 11–12).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Slope (`β` in the paper's Equations 11–12).
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Which estimator produced this model.
    pub fn estimator(&self) -> Estimator {
        self.estimator
    }

    /// Number of observations the model was fitted on (0 for manual).
    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    /// Forward prediction `y = intercept + slope·x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Exact inverse `x = (y − intercept) / slope` — the `p⁻¹`, `q⁻¹` of
    /// §6.1.
    ///
    /// # Errors
    /// The slope must be non-zero for the inverse to exist.
    pub fn inverse(&self, y: f64) -> Result<f64, MlError> {
        if self.slope == 0.0 {
            return Err(MlError::InvalidParameter(
                "inverse undefined for zero slope",
            ));
        }
        Ok((y - self.intercept) / self.slope)
    }
}

impl Regressor for LinearModel1D {
    fn predict_row(&self, features: &[f64]) -> f64 {
        self.predict(features.first().copied().unwrap_or(f64::NAN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_ols_recovers_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 1.0 + 0.5 * v).collect();
        let m = LinearModel1D::fit_ols(&x, &y).unwrap();
        assert!((m.intercept() - 1.0).abs() < 1e-9);
        assert!((m.slope() - 0.5).abs() < 1e-9);
        assert_eq!(m.estimator(), Estimator::Ols);
        assert_eq!(m.n_obs(), 10);
    }

    #[test]
    fn fit_huber_ignores_outliers() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 + 3.0 * v + if i % 9 == 4 { 500.0 } else { 0.0 })
            .collect();
        let huber = LinearModel1D::fit_huber(&x, &y).unwrap();
        let ols = LinearModel1D::fit_ols(&x, &y).unwrap();
        assert!((huber.slope() - 3.0).abs() < 0.05);
        assert!((huber.slope() - 3.0).abs() < (ols.slope() - 3.0).abs());
    }

    #[test]
    fn inverse_round_trips() {
        let m = LinearModel1D::from_parameters(10.0, 2.5);
        for x in [-3.0, 0.0, 7.25] {
            let y = m.predict(x);
            assert!((m.inverse(y).unwrap() - x).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_rejects_flat_line() {
        let m = LinearModel1D::from_parameters(4.0, 0.0);
        assert!(m.inverse(4.0).is_err());
    }

    #[test]
    fn regressor_trait_matches_predict() {
        let m = LinearModel1D::from_parameters(1.0, 2.0);
        assert_eq!(m.predict_row(&[5.0]), m.predict(5.0));
    }
}
