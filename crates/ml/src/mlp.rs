//! A small multi-layer perceptron regressor.
//!
//! §5.1 lists the What-if Engine's candidate predictors as "linear
//! regression (LR), support vector machines (SVM), or deep neural nets
//! (DNN)", before settling on linear models because they are "more
//! explainable, which is critical for domain experts". This module
//! supplies the DNN option for the cases where a relationship genuinely
//! curves (e.g. latency near saturation): one hidden layer of tanh units,
//! full-batch gradient descent with momentum, inputs and targets
//! standardized internally so learning rates are scale-free.
//!
//! Deliberately minimal — KEA's models have a handful of inputs and a few
//! hundred to a few thousand training rows; anything deeper is
//! unjustifiable for this data regime.

// kea-lint: allow-file(index-in-library) — layer weight/bias vectors are sized at construction and never resized

use crate::error::MlError;
use crate::features::StandardScaler;
use crate::Regressor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`MlpRegressor::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden units (one layer).
    pub hidden: usize,
    /// Full-batch gradient steps.
    pub epochs: usize,
    /// Learning rate (on standardized data).
    pub learning_rate: f64,
    /// Classical momentum coefficient.
    pub momentum: f64,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 16,
            epochs: 2000,
            learning_rate: 0.05,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// A fitted one-hidden-layer MLP regressor.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpRegressor {
    // Layer 1: hidden × inputs weights + hidden biases.
    w1: Vec<f64>,
    b1: Vec<f64>,
    // Layer 2: hidden weights + scalar bias.
    w2: Vec<f64>,
    b2: f64,
    n_inputs: usize,
    x_scaler: StandardScaler,
    y_mean: f64,
    y_std: f64,
    final_loss: f64,
}

impl MlpRegressor {
    /// Fits the network on `(x_rows, y)` with the given config.
    ///
    /// # Errors
    /// Shapes must agree, inputs must be finite, and there must be at
    /// least `hidden + 2` rows (a looser-than-statistical bound that
    /// catches obviously underdetermined calls).
    pub fn fit(x_rows: &[Vec<f64>], y: &[f64], config: MlpConfig) -> Result<Self, MlError> {
        if config.hidden == 0 || config.epochs == 0 {
            return Err(MlError::InvalidParameter(
                "hidden units and epochs must be positive",
            ));
        }
        if !(config.learning_rate > 0.0 && config.learning_rate.is_finite()) {
            return Err(MlError::InvalidParameter("learning rate must be positive"));
        }
        if !(0.0..1.0).contains(&config.momentum) {
            return Err(MlError::InvalidParameter("momentum must be in [0, 1)"));
        }
        if x_rows.len() != y.len() {
            return Err(MlError::ShapeMismatch {
                x_rows: x_rows.len(),
                y_len: y.len(),
            });
        }
        if x_rows.len() < config.hidden + 2 {
            return Err(MlError::InsufficientData {
                required: config.hidden + 2,
                actual: x_rows.len(),
            });
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFiniteInput);
        }
        let n_inputs = x_rows[0].len();
        if n_inputs == 0 || x_rows.iter().any(|r| r.len() != n_inputs) {
            return Err(MlError::InvalidParameter("ragged or empty feature rows"));
        }

        // Standardize inputs and target.
        let x_scaler = StandardScaler::fit(x_rows)?;
        let xs = x_scaler.transform(x_rows)?;
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let y_var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / y.len() as f64;
        let y_std = y_var.sqrt().max(1e-12);
        let yt: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        // Xavier-ish init.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        let scale1 = (1.0 / n_inputs as f64).sqrt();
        let scale2 = (1.0 / h as f64).sqrt();
        let mut w1: Vec<f64> = (0..h * n_inputs)
            .map(|_| rng.gen_range(-scale1..scale1))
            .collect();
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<f64> = (0..h).map(|_| rng.gen_range(-scale2..scale2)).collect();
        let mut b2 = 0.0;

        // Momentum buffers.
        let mut vw1 = vec![0.0; w1.len()];
        let mut vb1 = vec![0.0; h];
        let mut vw2 = vec![0.0; h];
        let mut vb2 = 0.0;

        let n = xs.len() as f64;
        let mut hidden_act = vec![0.0; h];
        let mut final_loss = f64::INFINITY;
        for _ in 0..config.epochs {
            // Accumulate full-batch gradients.
            let mut gw1 = vec![0.0; w1.len()];
            let mut gb1 = vec![0.0; h];
            let mut gw2 = vec![0.0; h];
            let mut gb2 = 0.0;
            let mut loss = 0.0;
            for (row, &target) in xs.iter().zip(&yt) {
                // Forward.
                for j in 0..h {
                    let mut z = b1[j];
                    for (i, &xi) in row.iter().enumerate() {
                        z += w1[j * n_inputs + i] * xi;
                    }
                    hidden_act[j] = z.tanh();
                }
                let pred: f64 =
                    b2 + w2.iter().zip(&hidden_act).map(|(w, a)| w * a).sum::<f64>();
                let err = pred - target;
                loss += err * err;
                // Backward.
                gb2 += err;
                for j in 0..h {
                    gw2[j] += err * hidden_act[j];
                    let d_hidden = err * w2[j] * (1.0 - hidden_act[j] * hidden_act[j]);
                    gb1[j] += d_hidden;
                    for (i, &xi) in row.iter().enumerate() {
                        gw1[j * n_inputs + i] += d_hidden * xi;
                    }
                }
            }
            final_loss = loss / n;
            // Momentum update.
            let lr = config.learning_rate / n;
            for (w, (g, v)) in w1.iter_mut().zip(gw1.iter().zip(vw1.iter_mut())) {
                *v = config.momentum * *v - lr * g;
                *w += *v;
            }
            for (b, (g, v)) in b1.iter_mut().zip(gb1.iter().zip(vb1.iter_mut())) {
                *v = config.momentum * *v - lr * g;
                *b += *v;
            }
            for (w, (g, v)) in w2.iter_mut().zip(gw2.iter().zip(vw2.iter_mut())) {
                *v = config.momentum * *v - lr * g;
                *w += *v;
            }
            vb2 = config.momentum * vb2 - lr * gb2;
            b2 += vb2;
        }
        if !final_loss.is_finite() {
            return Err(MlError::InvalidParameter(
                "training diverged; lower the learning rate",
            ));
        }
        Ok(MlpRegressor {
            w1,
            b1,
            w2,
            b2,
            n_inputs,
            x_scaler,
            y_mean,
            y_std,
            final_loss,
        })
    }

    /// Mean squared error on standardized targets at the last epoch.
    pub fn training_loss(&self) -> f64 {
        self.final_loss
    }

    /// Number of input features the network expects.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }
}

impl Regressor for MlpRegressor {
    fn predict_row(&self, features: &[f64]) -> f64 {
        let Ok(row) = self.x_scaler.transform_one(features) else {
            return f64::NAN; // wrong feature width: degrade, never abort
        };
        let h = self.b1.len();
        let mut out = self.b2;
        for j in 0..h {
            let mut z = self.b1[j];
            for (i, &xi) in row.iter().enumerate() {
                z += self.w1[j * self.n_inputs + i] * xi;
            }
            out += self.w2[j] * z.tanh();
        }
        out * self.y_std + self.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;
    use crate::metrics::r2_score;

    fn curved_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // Latency-vs-utilization-like curve: flat then convex blow-up —
        // exactly what a line cannot capture.
        let x: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 / 120.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| {
                let u = r[0];
                100.0 + 20.0 * u + 300.0 * (u - 0.6).max(0.0).powi(2)
            })
            .collect();
        (x, y)
    }

    #[test]
    fn learns_a_linear_function() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 + 2.0 * r[0]).collect();
        let mlp = MlpRegressor::fit(&x, &y, MlpConfig::default()).unwrap();
        let pred: Vec<f64> = x.iter().map(|r| mlp.predict_row(r)).collect();
        let r2 = r2_score(&y, &pred).unwrap();
        assert!(r2 > 0.999, "R² = {r2}");
    }

    #[test]
    fn beats_linear_regression_on_curved_data() {
        let (x, y) = curved_data();
        let mlp = MlpRegressor::fit(&x, &y, MlpConfig::default()).unwrap();
        let lin = LinearRegression::fit(&x, &y).unwrap();
        let mlp_pred: Vec<f64> = x.iter().map(|r| mlp.predict_row(r)).collect();
        let lin_pred = lin.predict(&x);
        let mlp_r2 = r2_score(&y, &mlp_pred).unwrap();
        let lin_r2 = r2_score(&y, &lin_pred).unwrap();
        assert!(
            mlp_r2 > lin_r2 + 0.01,
            "MLP {mlp_r2} must beat linear {lin_r2} on a curve"
        );
        assert!(mlp_r2 > 0.98, "MLP R² = {mlp_r2}");
    }

    #[test]
    fn multivariate_inputs_work() {
        let x: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 10) as f64, (i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * r[1]).sqrt() + r[0]).collect();
        let mlp = MlpRegressor::fit(&x, &y, MlpConfig::default()).unwrap();
        let pred: Vec<f64> = x.iter().map(|r| mlp.predict_row(r)).collect();
        assert!(r2_score(&y, &pred).unwrap() > 0.95);
        assert_eq!(mlp.n_inputs(), 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = curved_data();
        let a = MlpRegressor::fit(&x, &y, MlpConfig::default()).unwrap();
        let b = MlpRegressor::fit(&x, &y, MlpConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = MlpRegressor::fit(
            &x,
            &y,
            MlpConfig {
                seed: 99,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.predict_row(&[0.5]), c.predict_row(&[0.5]));
    }

    #[test]
    fn rejects_bad_hyperparameters_and_shapes() {
        let (x, y) = curved_data();
        let bad = |cfg: MlpConfig| MlpRegressor::fit(&x, &y, cfg).is_err();
        assert!(bad(MlpConfig {
            hidden: 0,
            ..Default::default()
        }));
        assert!(bad(MlpConfig {
            epochs: 0,
            ..Default::default()
        }));
        assert!(bad(MlpConfig {
            learning_rate: -1.0,
            ..Default::default()
        }));
        assert!(bad(MlpConfig {
            momentum: 1.0,
            ..Default::default()
        }));
        assert!(matches!(
            MlpRegressor::fit(&x[..3], &y[..3], MlpConfig::default()),
            Err(MlError::InsufficientData { .. })
        ));
        assert!(matches!(
            MlpRegressor::fit(&x, &y[..10], MlpConfig::default()),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn diverging_learning_rate_is_reported() {
        let (x, y) = curved_data();
        let result = MlpRegressor::fit(
            &x,
            &y,
            MlpConfig {
                learning_rate: 1e6,
                epochs: 50,
                ..Default::default()
            },
        );
        assert!(matches!(result, Err(MlError::InvalidParameter(_))));
    }
}
