//! Goodness-of-fit metrics for calibrated models.
//!
//! Phase II of the KEA methodology ends with the data scientists validating
//! calibrated models with the domain experts (Figure 3); these are the
//! numbers on that review slide.

use crate::error::MlError;

fn check(y_true: &[f64], y_pred: &[f64]) -> Result<(), MlError> {
    if y_true.len() != y_pred.len() {
        return Err(MlError::ShapeMismatch {
            x_rows: y_pred.len(),
            y_len: y_true.len(),
        });
    }
    if y_true.is_empty() {
        return Err(MlError::InsufficientData {
            required: 1,
            actual: 0,
        });
    }
    if y_true.iter().chain(y_pred).any(|v| !v.is_finite()) {
        return Err(MlError::NonFiniteInput);
    }
    Ok(())
}

/// Coefficient of determination `R² = 1 − SS_res / SS_tot`.
///
/// Returns 1.0 when both the residuals and the total variance are zero
/// (a perfect fit of a constant target).
///
/// # Errors
/// Shapes must match and data must be finite; a constant target with
/// non-zero residuals has undefined R² and returns
/// [`MlError::InvalidParameter`].
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    check(y_true, y_pred)?;
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 {
            Ok(1.0)
        } else {
            Err(MlError::InvalidParameter(
                "R² undefined for constant target with non-zero residuals",
            ))
        };
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Root mean squared error.
///
/// # Errors
/// Shapes must match and data must be finite.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    check(y_true, y_pred)?;
    let mse: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64;
    Ok(mse.sqrt())
}

/// Mean absolute error.
///
/// # Errors
/// Shapes must match and data must be finite.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    check(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Mean absolute percentage error (as a fraction, not percent).
///
/// # Errors
/// Additionally requires every true value to be non-zero.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    check(y_true, y_pred)?;
    if y_true.contains(&0.0) {
        return Err(MlError::InvalidParameter("MAPE undefined for zero targets"));
    }
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| ((t - p) / t).abs())
        .sum::<f64>()
        / y_true.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_metrics() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r2_score(&y, &y).unwrap(), 1.0);
        assert_eq!(rmse(&y, &y).unwrap(), 0.0);
        assert_eq!(mae(&y, &y).unwrap(), 0.0);
        assert_eq!(mape(&y, &y).unwrap(), 0.0);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let pred = [2.5; 4];
        assert!((r2_score(&y, &pred).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative_for_bad_models() {
        let y = [1.0, 2.0, 3.0];
        let pred = [10.0, 10.0, 10.0];
        assert!(r2_score(&y, &pred).unwrap() < 0.0);
    }

    #[test]
    fn r2_constant_target_cases() {
        let y = [5.0, 5.0, 5.0];
        assert_eq!(r2_score(&y, &y).unwrap(), 1.0);
        assert!(r2_score(&y, &[5.0, 5.0, 6.0]).is_err());
    }

    #[test]
    fn rmse_and_mae_hand_example() {
        let y = [0.0, 0.0];
        let pred = [3.0, -4.0];
        // MSE = (9 + 16)/2 = 12.5 → RMSE = 3.5355…; MAE = 3.5.
        assert!((rmse(&y, &pred).unwrap() - 12.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(mae(&y, &pred).unwrap(), 3.5);
    }

    #[test]
    fn mape_hand_example() {
        let y = [10.0, 20.0];
        let pred = [11.0, 18.0];
        // |1/10| and |2/20| → mean = 0.1.
        assert!((mape(&y, &pred).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mape_rejects_zero_targets() {
        assert!(mape(&[0.0, 1.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn shape_and_finite_checks() {
        assert!(r2_score(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[], &[]).is_err());
        assert!(mae(&[f64::NAN], &[1.0]).is_err());
    }
}
