//! A small dense row-major matrix.
//!
//! KEA's models are deliberately tiny — a handful of coefficients per
//! SC-SKU group — so a simple dense matrix with an `O(n³)` partial-pivoting
//! solver is the right tool: no sparse formats, no BLAS, fully auditable.

// kea-lint: allow-file(index-in-library) — dense row-major kernel; dimensions validated at matrix construction

use crate::error::MlError;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Errors
    /// All rows must have equal length; at least one row and one column.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MlError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MlError::InvalidParameter("matrix must be non-empty"));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(MlError::InvalidParameter("ragged rows"));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFiniteInput);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices (debug-friendly; all call sites use
    /// validated shapes).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self × other`.
    ///
    /// # Errors
    /// Inner dimensions must agree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MlError> {
        if self.cols != other.rows {
            return Err(MlError::InvalidParameter("matmul inner dimension mismatch"));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    let v = out.get(r, c) + a * other.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    /// `v.len()` must equal the number of columns.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MlError> {
        if v.len() != self.cols {
            return Err(MlError::InvalidParameter("matvec dimension mismatch"));
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Solves `self × x = b` with Gaussian elimination and partial pivoting.
    ///
    /// # Errors
    /// The matrix must be square, `b` must match, and the system must be
    /// numerically non-singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MlError> {
        if self.rows != self.cols {
            return Err(MlError::InvalidParameter("solve requires a square matrix"));
        }
        if b.len() != self.rows {
            return Err(MlError::InvalidParameter("solve rhs dimension mismatch"));
        }
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: largest |value| in this column at or below the
            // diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(MlError::SingularSystem);
            }
            if pivot_row != col {
                for c in 0..n {
                    // kea-lint: allow(panic-method-in-library) — col, pivot_row, c all < n by loop bounds, so both flat indices are < n*n
                    a.swap(col * n + c, pivot_row * n + c);
                }
                // kea-lint: allow(panic-method-in-library) — col and pivot_row are < n = x.len() by loop bounds
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in (col + 1)..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged_and_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[vec![f64::NAN]]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small_example() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.5, -2.0], vec![0.0, 4.0]]).unwrap();
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn solve_2x2() {
        // x + 2y = 5; 3x + 4y = 11 → x = 1, y = 2.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let x = a.solve(&[5.0, 11.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MlError::SingularSystem));
    }

    #[test]
    fn solve_larger_system_residual_is_small() {
        // A well-conditioned 5×5 system: verify Ax ≈ b.
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                (0..5)
                    .map(|j| if i == j { 10.0 } else { ((i * 5 + j) % 7) as f64 * 0.3 })
                    .collect()
            })
            .collect();
        let a = Matrix::from_rows(&rows).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5, 4.0];
        let x = a.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
        let sq = Matrix::identity(2);
        assert!(sq.solve(&[1.0]).is_err());
    }
}
