//! Huber robust regression fitted with IRLS.
//!
//! §5.2.1: "We used a Huber Regressor for the prediction of the set of
//! performance metrics in the What-if Engine, which is more robust to
//! outliers compared to the Least Squares Regression." Cluster telemetry is
//! full of outliers — machines draining for repair, transient hot spots —
//! so robustness is not optional.
//!
//! The estimator minimizes `Σ ρ_δ(r_i / s)` where `ρ_δ` is the Huber loss
//! (quadratic within `δ`, linear outside) and `s` is a robust scale
//! estimate. We fit by iteratively reweighted least squares: at each step,
//! observations with standardized residual beyond `δ` get down-weighted by
//! `δ·s/|r|`, then a weighted least-squares problem is solved in closed
//! form. Scale is re-estimated each iteration from the median absolute
//! deviation (MAD).

// kea-lint: allow-file(index-in-library) — IRLS over a design matrix validated rectangular at entry

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::Regressor;

/// Configuration and result of a Huber regression fit.
///
/// ```
/// use kea_ml::{HuberRegressor, Regressor};
/// // y = 1 + 2x with one gross outlier; Huber shrugs it off.
/// let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..30)
///     .map(|i| 1.0 + 2.0 * i as f64 + if i == 7 { 500.0 } else { 0.0 })
///     .collect();
/// let model = HuberRegressor::fit(&x, &y).unwrap();
/// assert!((model.coefficients()[0] - 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HuberRegressor {
    intercept: f64,
    coefficients: Vec<f64>,
    delta: f64,
    scale: f64,
    iterations: usize,
    converged: bool,
}

/// MAD-based robust scale, scaled to be consistent with the standard
/// deviation under normality (factor 1.4826).
fn mad_scale(residuals: &[f64]) -> f64 {
    let mut abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
    abs.sort_by(f64::total_cmp);
    let n = abs.len();
    let median = if n % 2 == 1 {
        abs[n / 2]
    } else {
        0.5 * (abs[n / 2 - 1] + abs[n / 2])
    };
    1.4826 * median
}

/// Solves weighted least squares `(Xᵀ W X) β = Xᵀ W y` with an intercept
/// column prepended to `x_rows`.
fn weighted_ls(x_rows: &[Vec<f64>], y: &[f64], w: &[f64]) -> Result<Vec<f64>, MlError> {
    let p = x_rows[0].len() + 1;
    let mut xtwx = Matrix::zeros(p, p);
    let mut xtwy = vec![0.0; p];
    let mut row = vec![0.0; p];
    for ((xr, &yi), &wi) in x_rows.iter().zip(y).zip(w) {
        row[0] = 1.0;
        // kea-lint: allow(panic-method-in-library) — check_rectangular at entry guarantees every row has p-1 features
        row[1..].copy_from_slice(xr);
        for i in 0..p {
            let wxi = wi * row[i];
            xtwy[i] += wxi * yi;
            for (j, &rj) in row.iter().enumerate().skip(i) {
                let v = xtwx.get(i, j) + wxi * rj;
                xtwx.set(i, j, v);
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..p {
        for j in (i + 1)..p {
            let v = xtwx.get(i, j);
            xtwx.set(j, i, v);
        }
    }
    xtwx.solve(&xtwy)
}

impl HuberRegressor {
    /// Default Huber threshold; 1.345 gives 95% efficiency under normal
    /// errors (the standard choice, also scikit-learn's default modulo its
    /// different parameterization).
    pub const DEFAULT_DELTA: f64 = 1.345;

    /// Fits with the default threshold and iteration budget.
    ///
    /// # Errors
    /// See [`HuberRegressor::fit_with`].
    pub fn fit(x_rows: &[Vec<f64>], y: &[f64]) -> Result<Self, MlError> {
        Self::fit_with(x_rows, y, Self::DEFAULT_DELTA, 100, 1e-8)
    }

    /// Fits a Huber regression with threshold `delta` (in robust standard
    /// deviations), at most `max_iter` IRLS iterations, declaring
    /// convergence when the max coefficient change drops below `tol`.
    /// If the budget runs out (rare; degenerate leverage configurations
    /// such as near-vertical clouds from saturated telemetry) the last
    /// iterate is returned with [`HuberRegressor::converged`] = `false` —
    /// a telemetry pipeline must degrade, not fall over.
    ///
    /// # Errors
    /// Shapes must agree, inputs must be finite, `delta` positive.
    pub fn fit_with(
        x_rows: &[Vec<f64>],
        y: &[f64],
        delta: f64,
        max_iter: usize,
        tol: f64,
    ) -> Result<Self, MlError> {
        if !delta.is_finite() || delta <= 0.0 {
            return Err(MlError::InvalidParameter("delta must be positive"));
        }
        if max_iter == 0 {
            return Err(MlError::InvalidParameter("max_iter must be positive"));
        }
        if x_rows.len() != y.len() {
            return Err(MlError::ShapeMismatch {
                x_rows: x_rows.len(),
                y_len: y.len(),
            });
        }
        // Ragged rows would otherwise panic in `weighted_ls`'s
        // `copy_from_slice`.
        let n_features = crate::error::check_rectangular(x_rows)?;
        let p = n_features + 1;
        if x_rows.len() < p {
            return Err(MlError::InsufficientData {
                required: p,
                actual: x_rows.len(),
            });
        }
        if x_rows.iter().flatten().any(|v| !v.is_finite()) || y.iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFiniteInput);
        }

        // Start from OLS (unit weights).
        let mut w = vec![1.0; y.len()];
        let mut beta = weighted_ls(x_rows, y, &w)?;
        let mut scale;
        let mut last_scale = 0.0;

        for iter in 1..=max_iter {
            // Residuals under current coefficients.
            let residuals: Vec<f64> = x_rows
                .iter()
                .zip(y)
                .map(|(xr, &yi)| {
                    let pred: f64 =
                        beta[0] + beta[1..].iter().zip(xr).map(|(b, x)| b * x).sum::<f64>();
                    yi - pred
                })
                .collect();
            scale = mad_scale(&residuals);
            if scale < 1e-12 {
                // Perfect (or near-perfect) fit for over half the data; the
                // Huber solution is the current one.
                return Ok(HuberRegressor {
                    intercept: beta[0],
                    coefficients: beta[1..].to_vec(),
                    delta,
                    scale: 0.0,
                    iterations: iter,
                    converged: true,
                });
            }
            let threshold = delta * scale;
            for (wi, r) in w.iter_mut().zip(&residuals) {
                let a = r.abs();
                *wi = if a <= threshold { 1.0 } else { threshold / a };
            }
            let next = weighted_ls(x_rows, y, &w)?;
            let max_change = next
                .iter()
                .zip(&beta)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            beta = next;
            if max_change < tol {
                return Ok(HuberRegressor {
                    intercept: beta[0],
                    coefficients: beta[1..].to_vec(),
                    delta,
                    scale,
                    iterations: iter,
                    converged: true,
                });
            }
            last_scale = scale;
        }
        Ok(HuberRegressor {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
            delta,
            scale: last_scale,
            iterations: max_iter,
            converged: false,
        })
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Robust residual scale (MAD-based) at convergence.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// IRLS iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Huber threshold in robust standard deviations.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Whether IRLS converged within the iteration budget. A `false`
    /// here flags a degenerate fit the caller may want to inspect.
    pub fn converged(&self) -> bool {
        self.converged
    }
}

impl Regressor for HuberRegressor {
    fn predict_row(&self, features: &[f64]) -> f64 {
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(features)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;

    fn noisy_line_with_outliers() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10 + 2x with small deterministic noise, plus 10% gross
        // outliers (telemetry from draining machines).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let xi = i as f64 * 0.5;
            let noise = ((i * 37) % 11) as f64 * 0.02 - 0.1;
            let yi = if i % 10 == 3 {
                // Gross outlier.
                10.0 + 2.0 * xi + 80.0
            } else {
                10.0 + 2.0 * xi + noise
            };
            x.push(vec![xi]);
            y.push(yi);
        }
        (x, y)
    }

    #[test]
    fn exact_line_recovered() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 5.0 - 0.5 * i as f64).collect();
        let m = HuberRegressor::fit(&x, &y).unwrap();
        assert!((m.intercept() - 5.0).abs() < 1e-6);
        assert!((m.coefficients()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn robust_to_gross_outliers_where_ols_is_not() {
        let (x, y) = noisy_line_with_outliers();
        let huber = HuberRegressor::fit(&x, &y).unwrap();
        let ols = LinearRegression::fit(&x, &y).unwrap();
        // Huber slope should be very close to the true 2.0; OLS is pulled
        // away by the +80 outliers.
        let huber_err = (huber.coefficients()[0] - 2.0).abs();
        let ols_err = (ols.coefficients()[0] - 2.0).abs();
        assert!(huber_err < 0.05, "huber slope err {huber_err}");
        assert!(
            huber.intercept() - 10.0 < 1.0,
            "huber intercept {}",
            huber.intercept()
        );
        assert!(
            huber_err < ols_err,
            "huber ({huber_err}) should beat OLS ({ols_err})"
        );
        // OLS intercept is biased upward by roughly outlier_mass ≈ 8.
        assert!(ols.intercept() > huber.intercept() + 2.0);
    }

    #[test]
    fn multivariate_huber() {
        // y = 1 + 2a + 3b with a few outliers.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let a = (i % 6) as f64;
            let b = (i % 5) as f64;
            let mut yi = 1.0 + 2.0 * a + 3.0 * b + ((i * 13) % 7) as f64 * 0.01;
            if i % 15 == 7 {
                yi += 50.0;
            }
            x.push(vec![a, b]);
            y.push(yi);
        }
        let m = HuberRegressor::fit(&x, &y).unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 0.1);
        assert!((m.coefficients()[1] - 3.0).abs() < 0.1);
    }

    #[test]
    fn perfect_fit_short_circuits() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 3.0 * i as f64).collect();
        let m = HuberRegressor::fit(&x, &y).unwrap();
        assert_eq!(m.scale(), 0.0);
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = [1.0, 2.0, 3.0];
        assert!(HuberRegressor::fit_with(&x, &y, 0.0, 10, 1e-8).is_err());
        assert!(HuberRegressor::fit_with(&x, &y, -1.0, 10, 1e-8).is_err());
        assert!(HuberRegressor::fit_with(&x, &y, 1.345, 0, 1e-8).is_err());
    }

    #[test]
    fn shape_and_finiteness_checked() {
        assert!(matches!(
            HuberRegressor::fit(&[vec![1.0], vec![2.0]], &[1.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
        assert_eq!(
            HuberRegressor::fit(&[vec![1.0], vec![f64::NAN], vec![2.0]], &[1.0, 2.0, 3.0]),
            Err(MlError::NonFiniteInput)
        );
    }

    #[test]
    fn ragged_rows_are_an_error_not_a_panic() {
        // Historical panic: row 2 is wider than row 0, and
        // `weighted_ls` copied it into a row-0-sized buffer.
        let x = vec![vec![1.0], vec![2.0], vec![3.0, 4.0], vec![5.0]];
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(
            HuberRegressor::fit(&x, &y),
            Err(MlError::RaggedRows {
                expected: 1,
                row: 2,
                actual: 2
            })
        );
        // Narrower rows must be caught too (they would silently predict
        // with stale buffer contents rather than panic).
        let x = vec![vec![1.0, 1.0], vec![2.0], vec![3.0, 4.0]];
        let y = [1.0, 2.0, 3.0];
        assert!(matches!(
            HuberRegressor::fit(&x, &y),
            Err(MlError::RaggedRows { row: 1, .. })
        ));
    }

    #[test]
    fn iterations_reported() {
        let (x, y) = noisy_line_with_outliers();
        let m = HuberRegressor::fit(&x, &y).unwrap();
        assert!(m.iterations() >= 1);
        assert!(m.scale() > 0.0);
        assert_eq!(m.delta(), HuberRegressor::DEFAULT_DELTA);
    }

    #[test]
    fn larger_delta_approaches_ols() {
        let (x, y) = noisy_line_with_outliers();
        let ols = LinearRegression::fit(&x, &y).unwrap();
        // With an enormous delta nothing is down-weighted: Huber == OLS.
        let huber = HuberRegressor::fit_with(&x, &y, 1e9, 100, 1e-10).unwrap();
        assert!((huber.coefficients()[0] - ols.coefficients()[0]).abs() < 1e-6);
        assert!((huber.intercept() - ols.intercept()).abs() < 1e-6);
    }
}
