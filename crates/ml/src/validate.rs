//! Train/test splitting and k-fold cross-validation.
//!
//! KEA validates calibrated models before the optimizer is allowed to act
//! on them (Phase II → Phase III gate in Figure 3). Splits are seeded so a
//! validation run is reproducible alongside the rest of the pipeline.

// kea-lint: allow-file(index-in-library) — fold index sets partition 0..n; x/y lengths validated equal at entry

use crate::error::MlError;
use rand::seq::SliceRandom;
use rand::Rng;

/// Index-level train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices assigned to the training set.
    pub train: Vec<usize>,
    /// Indices assigned to the test set.
    pub test: Vec<usize>,
}

/// Randomly splits `n` observation indices with the given test fraction.
///
/// # Errors
/// `test_fraction` must be strictly inside `(0, 1)` and both resulting sets
/// must be non-empty.
pub fn train_test_split<R: Rng + ?Sized>(
    n: usize,
    test_fraction: f64,
    rng: &mut R,
) -> Result<Split, MlError> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(MlError::InvalidParameter("test_fraction must be in (0, 1)"));
    }
    // kea-lint: allow(truncating-as-cast) — test_fraction ∈ (0, 1) validated above, so the product is in [0, n]
    let n_test = ((n as f64) * test_fraction).round() as usize;
    if n_test == 0 || n_test >= n {
        return Err(MlError::InsufficientData {
            required: 2,
            actual: n,
        });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    // kea-lint: allow(panic-method-in-library) — n_test ∈ (0, n) validated above, so the split point is within 0..n = idx.len()
    let test = idx.split_off(n - n_test);
    Ok(Split { train: idx, test })
}

/// K-fold index partitions for cross-validation.
///
/// # Errors
/// Needs `2 ≤ k ≤ n`.
pub fn k_folds<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Result<Vec<Split>, MlError> {
    if k < 2 {
        return Err(MlError::InvalidParameter("k must be at least 2"));
    }
    if k > n {
        return Err(MlError::InsufficientData {
            required: k,
            actual: n,
        });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = idx[start..start + size].to_vec();
        let train: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + size..])
            .copied()
            .collect();
        folds.push(Split { train, test });
        start += size;
    }
    Ok(folds)
}

/// Cross-validated score of an arbitrary fit/score procedure.
///
/// `fit_score` receives (train_x, train_y, test_x, test_y) and returns the
/// fold's score; the mean across folds is returned. Errors from any fold
/// propagate.
///
/// # Errors
/// Shapes must agree; see [`k_folds`] for fold-count constraints.
pub fn cross_val_score<R, F>(
    x_rows: &[Vec<f64>],
    y: &[f64],
    k: usize,
    rng: &mut R,
    mut fit_score: F,
) -> Result<f64, MlError>
where
    R: Rng + ?Sized,
    F: FnMut(&[Vec<f64>], &[f64], &[Vec<f64>], &[f64]) -> Result<f64, MlError>,
{
    if x_rows.len() != y.len() {
        return Err(MlError::ShapeMismatch {
            x_rows: x_rows.len(),
            y_len: y.len(),
        });
    }
    let folds = k_folds(x_rows.len(), k, rng)?;
    let mut total = 0.0;
    for fold in &folds {
        let tx: Vec<Vec<f64>> = fold.train.iter().map(|&i| x_rows[i].clone()).collect();
        let ty: Vec<f64> = fold.train.iter().map(|&i| y[i]).collect();
        let vx: Vec<Vec<f64>> = fold.test.iter().map(|&i| x_rows[i].clone()).collect();
        let vy: Vec<f64> = fold.test.iter().map(|&i| y[i]).collect();
        total += fit_score(&tx, &ty, &vx, &vy)?;
    }
    Ok(total / folds.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_is_a_partition() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = train_test_split(100, 0.25, &mut rng).unwrap();
        assert_eq!(s.test.len(), 25);
        assert_eq!(s.train.len(), 75);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic_under_seed() {
        let a = train_test_split(50, 0.2, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = train_test_split(50, 0.2, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_rejects_degenerate_fractions() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(train_test_split(10, 0.0, &mut rng).is_err());
        assert!(train_test_split(10, 1.0, &mut rng).is_err());
        assert!(train_test_split(1, 0.5, &mut rng).is_err());
    }

    #[test]
    fn k_folds_partition_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let folds = k_folds(23, 5, &mut rng).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // train ∪ test = everything for each fold.
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 23);
        }
    }

    #[test]
    fn k_folds_rejects_bad_k() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(k_folds(10, 1, &mut rng).is_err());
        assert!(k_folds(3, 4, &mut rng).is_err());
    }

    #[test]
    fn cross_val_scores_a_linear_model() {
        use crate::linreg::LinearRegression;
        use crate::metrics::r2_score;
        use crate::Regressor;
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..60)
            .map(|i| 2.0 + 1.5 * i as f64 + ((i * 7) % 5) as f64 * 0.01)
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let score = cross_val_score(&x, &y, 5, &mut rng, |tx, ty, vx, vy| {
            let m = LinearRegression::fit(tx, ty)?;
            r2_score(vy, &m.predict(vx))
        })
        .unwrap();
        assert!(score > 0.999, "cv R² = {score}");
    }

    #[test]
    fn cross_val_shape_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let r = cross_val_score(&[vec![1.0]], &[1.0, 2.0], 2, &mut rng, |_, _, _, _| Ok(0.0));
        assert!(matches!(r, Err(MlError::ShapeMismatch { .. })));
    }
}
