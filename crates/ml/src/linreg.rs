//! Ordinary least squares and ridge regression via the normal equations.
//!
//! These are the "LR" baselines of §5.1. Coefficient vectors are exposed so
//! domain experts can read the model — the paper's stated reason for
//! preferring linear models.

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::Regressor;

/// Shared fitting core: solves `(XᵀX + λ·P) β = Xᵀy` where `P` is the
/// identity with a zero in the intercept position (the intercept is never
/// penalized).
fn fit_linear(
    x_rows: &[Vec<f64>],
    y: &[f64],
    fit_intercept: bool,
    lambda: f64,
) -> Result<(f64, Vec<f64>), MlError> {
    if x_rows.len() != y.len() {
        return Err(MlError::ShapeMismatch {
            x_rows: x_rows.len(),
            y_len: y.len(),
        });
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(MlError::NonFiniteInput);
    }
    // Validate row widths up front: a ragged input should be a typed
    // error here, not a failure (or panic) deep in the matrix layer.
    let n_features = crate::error::check_rectangular(x_rows)?;
    let p = n_features + usize::from(fit_intercept);
    if x_rows.len() < p.max(1) {
        return Err(MlError::InsufficientData {
            required: p.max(1),
            actual: x_rows.len(),
        });
    }

    // Build the (optionally intercept-augmented) design matrix.
    let design: Vec<Vec<f64>> = x_rows
        .iter()
        .map(|r| {
            if fit_intercept {
                let mut row = Vec::with_capacity(p);
                row.push(1.0);
                row.extend_from_slice(r);
                row
            } else {
                r.clone()
            }
        })
        .collect();
    let x = Matrix::from_rows(&design)?;
    let xt = x.transpose();
    let mut xtx = xt.matmul(&x)?;
    if lambda > 0.0 {
        let start = usize::from(fit_intercept);
        for i in start..p {
            let v = xtx.get(i, i) + lambda;
            xtx.set(i, i, v);
        }
    }
    let xty = xt.matvec(y)?;
    let beta = xtx.solve(&xty)?;

    if fit_intercept {
        Ok((beta[0], beta[1..].to_vec())) // kea-lint: allow(index-in-library) — beta has 1 + n_features entries by construction
    } else {
        Ok((0.0, beta))
    }
}

/// Ordinary least squares.
///
/// ```
/// use kea_ml::{LinearRegression, Regressor};
/// // y = 2 + 3x, exactly.
/// let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
/// let model = LinearRegression::fit(&x, &y).unwrap();
/// assert!((model.intercept() - 2.0).abs() < 1e-9);
/// assert!((model.coefficients()[0] - 3.0).abs() < 1e-9);
/// assert!((model.predict_row(&[4.0]) - 14.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    intercept: f64,
    coefficients: Vec<f64>,
}

impl LinearRegression {
    /// Fits OLS with an intercept.
    ///
    /// # Errors
    /// Shapes must agree, inputs must be finite, and the design must be
    /// full-rank with at least as many rows as coefficients.
    pub fn fit(x_rows: &[Vec<f64>], y: &[f64]) -> Result<Self, MlError> {
        let (intercept, coefficients) = fit_linear(x_rows, y, true, 0.0)?;
        Ok(LinearRegression {
            intercept,
            coefficients,
        })
    }

    /// Fits OLS through the origin (no intercept).
    ///
    /// # Errors
    /// Same as [`LinearRegression::fit`].
    pub fn fit_no_intercept(x_rows: &[Vec<f64>], y: &[f64]) -> Result<Self, MlError> {
        let (intercept, coefficients) = fit_linear(x_rows, y, false, 0.0)?;
        Ok(LinearRegression {
            intercept,
            coefficients,
        })
    }

    /// Builds a model directly from known parameters (used by the What-if
    /// Engine when loading calibrated coefficients).
    pub fn from_parameters(intercept: f64, coefficients: Vec<f64>) -> Self {
        LinearRegression {
            intercept,
            coefficients,
        }
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope coefficients (one per feature).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

impl Regressor for LinearRegression {
    fn predict_row(&self, features: &[f64]) -> f64 {
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(features)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }
}

/// Ridge regression (`L2`-penalized least squares, intercept unpenalized).
///
/// Used when machine groups have few observations and the plain normal
/// equations are ill-conditioned.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    intercept: f64,
    coefficients: Vec<f64>,
    lambda: f64,
}

impl RidgeRegression {
    /// Fits ridge regression with penalty `lambda ≥ 0`.
    ///
    /// # Errors
    /// `lambda` must be non-negative and finite; otherwise as
    /// [`LinearRegression::fit`].
    pub fn fit(x_rows: &[Vec<f64>], y: &[f64], lambda: f64) -> Result<Self, MlError> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(MlError::InvalidParameter("lambda must be non-negative"));
        }
        let (intercept, coefficients) = fit_linear(x_rows, y, true, lambda)?;
        Ok(RidgeRegression {
            intercept,
            coefficients,
            lambda,
        })
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The penalty used at fit time.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Regressor for RidgeRegression {
    fn predict_row(&self, features: &[f64]) -> f64 {
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(features)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_line(n: usize, a: f64, b: f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| a + b * i as f64).collect();
        (x, y)
    }

    #[test]
    fn recovers_exact_line() {
        let (x, y) = exact_line(20, -1.5, 0.75);
        let m = LinearRegression::fit(&x, &y).unwrap();
        assert!((m.intercept() + 1.5).abs() < 1e-9);
        assert!((m.coefficients()[0] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn recovers_multivariate_plane() {
        // y = 1 + 2a − 3b
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 5) as f64, (i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 1.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
        let m = LinearRegression::fit(&x, &y).unwrap();
        assert!((m.intercept() - 1.0).abs() < 1e-8);
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-8);
        assert!((m.coefficients()[1] + 3.0).abs() < 1e-8);
    }

    #[test]
    fn no_intercept_goes_through_origin() {
        let x: Vec<Vec<f64>> = (1..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (1..10).map(|i| 4.0 * i as f64).collect();
        let m = LinearRegression::fit_no_intercept(&x, &y).unwrap();
        assert_eq!(m.intercept(), 0.0);
        assert!((m.coefficients()[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_minimizes_residuals_on_noisy_data() {
        // OLS residuals must be orthogonal to the regressors.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50)
            .map(|i| 3.0 + 0.5 * i as f64 + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let m = LinearRegression::fit(&x, &y).unwrap();
        let resid: Vec<f64> = x
            .iter()
            .zip(&y)
            .map(|(r, &t)| t - m.predict_row(r))
            .collect();
        let sum: f64 = resid.iter().sum();
        let dot: f64 = resid.iter().zip(&x).map(|(r, xr)| r * xr[0]).sum();
        assert!(sum.abs() < 1e-8, "residuals must sum to ~0, got {sum}");
        assert!(dot.abs() < 1e-6, "residuals ⟂ x violated, got {dot}");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let x = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            LinearRegression::fit(&x, &[1.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn ragged_rows_rejected_up_front() {
        let x = vec![vec![1.0], vec![2.0, 9.0], vec![3.0]];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(
            LinearRegression::fit(&x, &y),
            Err(MlError::RaggedRows {
                expected: 1,
                row: 1,
                actual: 2
            })
        );
        assert!(matches!(
            LinearRegression::fit_no_intercept(&x, &y),
            Err(MlError::RaggedRows { .. })
        ));
        assert!(matches!(
            RidgeRegression::fit(&x, &y, 0.5),
            Err(MlError::RaggedRows { .. })
        ));
    }

    #[test]
    fn underdetermined_rejected() {
        // 2 coefficients (intercept + slope) but 1 row.
        assert!(matches!(
            LinearRegression::fit(&[vec![1.0]], &[1.0]),
            Err(MlError::InsufficientData { .. })
        ));
    }

    #[test]
    fn collinear_features_detected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(LinearRegression::fit(&x, &y), Err(MlError::SingularSystem));
    }

    #[test]
    fn ridge_fixes_collinearity() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 5.0 * i as f64).collect();
        let m = RidgeRegression::fit(&x, &y, 1e-3).unwrap();
        // Combined effect ≈ 5: c0 + 2·c1 ≈ 5.
        let combined = m.coefficients()[0] + 2.0 * m.coefficients()[1];
        assert!((combined - 5.0).abs() < 0.01, "combined = {combined}");
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        let (x, y) = exact_line(20, 0.0, 3.0);
        let small = RidgeRegression::fit(&x, &y, 0.01).unwrap();
        let large = RidgeRegression::fit(&x, &y, 1000.0).unwrap();
        assert!(large.coefficients()[0].abs() < small.coefficients()[0].abs());
        assert!(small.coefficients()[0] <= 3.0 + 1e-9);
    }

    #[test]
    fn ridge_zero_lambda_equals_ols() {
        let (x, y) = exact_line(15, 2.0, -1.0);
        let ols = LinearRegression::fit(&x, &y).unwrap();
        let ridge = RidgeRegression::fit(&x, &y, 0.0).unwrap();
        assert!((ols.intercept() - ridge.intercept()).abs() < 1e-9);
        assert!((ols.coefficients()[0] - ridge.coefficients()[0]).abs() < 1e-9);
    }

    #[test]
    fn ridge_rejects_negative_lambda() {
        let (x, y) = exact_line(5, 0.0, 1.0);
        assert!(RidgeRegression::fit(&x, &y, -1.0).is_err());
        assert!(RidgeRegression::fit(&x, &y, f64::NAN).is_err());
    }

    #[test]
    fn nan_target_rejected() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert_eq!(
            LinearRegression::fit(&x, &[1.0, f64::NAN, 3.0]),
            Err(MlError::NonFiniteInput)
        );
    }

    #[test]
    fn from_parameters_round_trips() {
        let m = LinearRegression::from_parameters(1.0, vec![2.0, 3.0]);
        assert_eq!(m.predict_row(&[10.0, 100.0]), 1.0 + 20.0 + 300.0);
    }

    #[test]
    fn batch_predict_matches_row_predict() {
        let (x, y) = exact_line(10, 1.0, 2.0);
        let m = LinearRegression::fit(&x, &y).unwrap();
        let batch = m.predict(&x);
        for (b, r) in batch.iter().zip(&x) {
            assert_eq!(*b, m.predict_row(r));
        }
    }
}
