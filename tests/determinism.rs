//! Reproducibility: the entire stack is a pure function of (config, seed).

use kea_core::apps::yarn_config::{run_yarn_tuning, YarnTuningParams};
use kea_sim::{run, ClusterSpec, SimConfig};

#[test]
fn simulation_is_bit_identical_under_a_seed() {
    let a = run(&SimConfig::baseline(ClusterSpec::tiny(), 12, 77));
    let b = run(&SimConfig::baseline(ClusterSpec::tiny(), 12, 77));
    assert_eq!(a.telemetry.len(), b.telemetry.len());
    for (ra, rb) in a.telemetry.iter().zip(b.telemetry.iter()) {
        assert_eq!(ra, rb);
    }
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.tasks, b.tasks);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn full_pipeline_is_deterministic() {
    let mut params = YarnTuningParams::quick(ClusterSpec::tiny(), 555);
    params.observe_hours = 26;
    params.eval_hours = 26;
    let a = run_yarn_tuning(&params).expect("runs");
    let b = run_yarn_tuning(&params).expect("runs");
    assert_eq!(a.optimization.suggestions, b.optimization.suggestions);
    assert_eq!(a.throughput_change_pct, b.throughput_change_pct);
    assert_eq!(a.capacity_change_pct, b.capacity_change_pct);
}

#[test]
fn seeds_actually_matter() {
    let a = run(&SimConfig::baseline(ClusterSpec::tiny(), 8, 1));
    let b = run(&SimConfig::baseline(ClusterSpec::tiny(), 8, 2));
    let util = |o: &kea_sim::SimOutput| {
        o.telemetry
            .iter()
            .map(|r| r.metrics.cpu_utilization)
            .sum::<f64>()
    };
    assert_ne!(util(&a), util(&b));
}
