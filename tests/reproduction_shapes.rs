//! The paper's headline shapes, asserted end-to-end on tiny clusters so
//! the whole evaluation story is guarded by `cargo test`. Magnitude
//! reproduction lives in `kea-bench --bin repro` (see EXPERIMENTS.md).

use kea_core::conceptualization::{validate_critical_path, validate_uniformity};
use kea_core::PerformanceMonitor;
use kea_ml::LinearModel1D;
use kea_sim::{run, ClusterSpec, ConfigPlan, SimConfig, WorkloadSpec, SC1};
use kea_telemetry::{GroupKey, Metric};

fn observe(occupancy: f64, hours: u64, seed: u64) -> (ClusterSpec, kea_sim::SimOutput) {
    let cluster = ClusterSpec::tiny();
    let out = run(&SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(&cluster, occupancy),
        plan: ConfigPlan::baseline(&cluster.skus, SC1),
        duration_hours: hours,
        seed,
        task_log_every: 10,
        adhoc_job_log_every: 8,
    });
    (cluster, out)
}

#[test]
fn figure1_average_utilization_above_sixty_percent() {
    let (_, out) = observe(0.95, 30, 800);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let series = monitor
        .hourly_fleet_series(Metric::CpuUtilization)
        .expect("telemetry");
    let steady: Vec<f64> = series.iter().skip(4).map(|(_, u)| *u).collect();
    let avg = steady.iter().sum::<f64>() / steady.len() as f64;
    assert!(avg > 55.0, "fleet average {avg}% (paper: >60%)");
    // Diurnal structure: the series is not flat.
    let min = steady.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = steady.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(max - min > 5.0, "diurnal swing {min}..{max}");
}

#[test]
fn figure2_older_generations_run_hotter() {
    let (_, out) = observe(0.95, 30, 801);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let groups = monitor.group_utilization();
    assert_eq!(groups.len(), 6);
    // Monotone decreasing utilization from oldest to newest, allowing
    // one small inversion between adjacent mid-generations.
    let utils: Vec<f64> = groups.iter().map(|g| g.mean_cpu_utilization).collect();
    let inversions = utils.windows(2).filter(|w| w[0] < w[1] - 1.0).count();
    assert!(inversions <= 1, "utilization by generation: {utils:?}");
    assert!(utils[0] > utils[5] + 15.0, "gap old-vs-new: {utils:?}");
}

#[test]
fn figure5_critical_path_prefers_slow_machines() {
    let (cluster, out) = observe(0.95, 30, 802);
    let report = validate_critical_path(&cluster, &out).expect("tasks everywhere");
    assert!(report.skew_confirmed, "{report:#?}");
}

#[test]
fn figure6_placement_is_type_uniform() {
    let (cluster, out) = observe(0.95, 30, 803);
    let report = validate_uniformity(&cluster, &out, 300, 0.10).expect("tasks completed");
    assert!(report.uniform, "{report:#?}");
}

#[test]
fn figure8_throughput_linear_in_utilization() {
    let (cluster, out) = observe(0.95, 30, 804);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    for sku in &cluster.skus {
        let pts = monitor.scatter_view(
            GroupKey::new(sku.id, SC1),
            Metric::CpuUtilization,
            Metric::TotalDataRead,
        );
        let busy: Vec<_> = pts.iter().filter(|p| p.y > 0.0).collect();
        let xs: Vec<f64> = busy.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = busy.iter().map(|p| p.y).collect();
        let line = LinearModel1D::fit_ols(&xs, &ys).expect("enough points");
        assert!(line.slope() > 0.0, "{}: slope {}", sku.name, line.slope());
    }
}

#[test]
fn figure12_queues_grow_with_machine_age() {
    // Saturated regime: queues must exist and be ordered by SKU speed.
    let (cluster, out) = observe(1.1, 30, 805);
    let mean_queue = |sku: u16| {
        let recs: Vec<f64> = out
            .telemetry
            .by_group(GroupKey::new(kea_telemetry::SkuId(sku), SC1))
            .filter(|r| r.hour >= 4)
            .map(|r| r.metrics.queued_containers)
            .collect();
        recs.iter().sum::<f64>() / recs.len() as f64
    };
    let oldest = mean_queue(0);
    let newest = mean_queue(5);
    assert!(oldest > 0.05, "old machines hold queues: {oldest}");
    assert!(
        oldest > newest * 2.0,
        "queue skew: oldest {oldest} vs newest {newest}"
    );
    let _ = cluster;
}

#[test]
fn figure13_resources_affine_in_cores() {
    let (_, out) = observe(0.95, 30, 806);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let group = GroupKey::new(kea_telemetry::SkuId(4), SC1);
    let mut cores = Vec::new();
    let mut ssd = Vec::new();
    let mut ram = Vec::new();
    for rec in monitor.store().by_group(group) {
        if rec.metrics.cores_used > 0.5 {
            cores.push(rec.metrics.cores_used);
            ssd.push(rec.metrics.ssd_used_gb);
            ram.push(rec.metrics.ram_used_gb);
        }
    }
    let p = LinearModel1D::fit_huber(&cores, &ssd).expect("fits");
    let q = LinearModel1D::fit_huber(&cores, &ram).expect("fits");
    assert!(p.slope() > 0.0 && q.slope() > 0.0);
    // The fits are tight: R² via residuals.
    let pred: Vec<f64> = cores.iter().map(|&c| p.predict(c)).collect();
    let r2 = kea_ml::r2_score(&ssd, &pred).expect("scores");
    assert!(r2 > 0.8, "SSD-vs-cores R² = {r2}");
}
