//! Cross-crate integration: the full KEA stack wired together —
//! simulator → telemetry → Performance Monitor → What-if Engine →
//! Optimizer → Flighting → Deployment — with invariants that span crate
//! boundaries.

use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{
    evaluate_deployment, optimize_max_containers, Guardrail, OperatingPoint,
    PerformanceMonitor,
};
use kea_ml::r2_score;
use kea_sim::{run, ClusterSpec, ConfigPlan, SimConfig, WorkloadSpec, SC1};
use kea_telemetry::Metric;
use std::collections::BTreeMap;

fn observe(hours: u64, seed: u64) -> kea_sim::SimOutput {
    let cluster = ClusterSpec::tiny();
    run(&SimConfig {
        cluster: cluster.clone(),
        workload: WorkloadSpec::default_for(&cluster, 0.95),
        plan: ConfigPlan::baseline(&cluster.skus, SC1),
        duration_hours: hours,
        seed,
        task_log_every: 10,
        adhoc_job_log_every: 8,
    })
}

#[test]
fn models_generalize_to_held_out_telemetry() {
    // Fit on the first day, score on the second: the What-if premise is
    // that the relationships are stable system fundamentals (§5.1).
    let out = observe(48, 900);
    let mut train = kea_telemetry::TelemetryStore::new();
    let mut test = kea_telemetry::TelemetryStore::new();
    for rec in out.telemetry.iter() {
        if rec.hour < 24 {
            train.push(*rec);
        } else {
            test.push(*rec);
        }
    }
    let train_monitor = PerformanceMonitor::new(&train);
    let engine = WhatIfEngine::fit_at(&train_monitor, FitMethod::Huber, Granularity::Hourly, 12)
        .expect("fits on day one");
    // Score g_k on day-two records of the largest group.
    let group = engine
        .groups()
        .max_by_key(|g| g.n_rows)
        .expect("groups calibrated")
        .group;
    let models = engine.group(group).expect("largest group");
    let mut y_true = Vec::new();
    let mut y_pred = Vec::new();
    for rec in test.by_group(group) {
        if rec.metrics.tasks_finished > 0.0 {
            y_true.push(rec.metrics.cpu_utilization);
            y_pred.push(models.predict_util(rec.metrics.avg_running_containers));
        }
    }
    let r2 = r2_score(&y_true, &y_pred).expect("scores");
    assert!(r2 > 0.9, "g_k generalizes: held-out R² = {r2}");
}

#[test]
fn lp_solution_is_feasible_against_the_nonlinear_check() {
    let out = observe(48, 901);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("fits");
    let counts: BTreeMap<_, _> = monitor
        .group_utilization()
        .into_iter()
        .map(|g| (g.group, g.machines))
        .collect();
    for op in [OperatingPoint::Median, OperatingPoint::Percentile(90.0)] {
        let opt = optimize_max_containers(&engine, &counts, 2.0, op).expect("solvable");
        // Integer plan respects the latency budget via the full models.
        assert!(
            opt.predicted_latency <= opt.baseline_latency * (1.0 + 1e-9),
            "{op:?}: {} vs {}",
            opt.predicted_latency,
            opt.baseline_latency
        );
        // Steps bounded by ±2.
        for s in &opt.suggestions {
            assert!(s.delta_step.abs() <= 2, "{s:?}");
        }
        // Capacity gain is non-negative (d = 0 is always feasible).
        assert!(opt.predicted_capacity_gain >= -1e-9);
    }
}

#[test]
fn deployment_evaluation_spans_sim_and_stats() {
    // A null deployment (no config change at the boundary) must not trip
    // guardrails or report significant effects beyond noise.
    let out = observe(48, 902);
    let rails = [Guardrail {
        metric: Metric::AverageTaskLatency,
        higher_is_worse: true,
        max_regression: 0.05,
        alpha: 0.01,
    }];
    let report = evaluate_deployment(
        &out.telemetry,
        (1, 24),
        (25, 48),
        &[Metric::TotalDataRead],
        &rails,
    )
    .expect("windows populated");
    assert!(report.approved, "null change passes guardrails: {report:?}");
    // Both windows are weekdays with identical diurnal shape; the
    // measured difference should be small.
    let (_, effect) = &report.effects[0];
    assert!(
        effect.relative_effect.abs() < 0.06,
        "null-deployment drift: {}",
        effect.relative_effect
    );
}

#[test]
fn group_models_cover_every_sku_present_in_telemetry() {
    let out = observe(48, 903);
    let monitor = PerformanceMonitor::new(&out.telemetry);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("fits");
    let telemetry_groups = out.telemetry.groups();
    assert_eq!(engine.len(), telemetry_groups.len());
    for g in telemetry_groups {
        assert!(engine.group(g).is_some(), "missing models for {g:?}");
    }
}
