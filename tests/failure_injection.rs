//! Failure injection: the pipeline must degrade loudly (typed errors) or
//! robustly (Huber shrugging off contamination), never silently.

use kea_core::whatif::{FitMethod, Granularity, WhatIfEngine};
use kea_core::{analyze, KeaError, MachineSplit, PerformanceMonitor};
use kea_sim::{run, ClusterSpec, SimConfig};
use kea_telemetry::{GroupKey, Metric, TelemetryStore};
use std::collections::BTreeSet;

/// Simulated telemetry with a fraction of machine-hours corrupted the way
/// draining/flapping machines corrupt real telemetry: implausibly large
/// latencies and zeroed throughput.
fn contaminated_telemetry(fraction_pct: u64) -> (ClusterSpec, TelemetryStore) {
    let cluster = ClusterSpec::tiny();
    let out = run(&SimConfig::baseline(cluster.clone(), 30, 990));
    let mut store = TelemetryStore::new();
    for (i, rec) in out.telemetry.iter().enumerate() {
        let mut rec = *rec;
        if (i as u64) % 100 < fraction_pct && rec.metrics.tasks_finished > 0.0 {
            rec.metrics.avg_task_latency_s *= 40.0; // nonsense gauge
            rec.metrics.total_data_read_gb = 0.0;
        }
        store.push(rec);
    }
    (cluster, store)
}

#[test]
fn huber_models_survive_contaminated_telemetry() {
    let (_, clean) = contaminated_telemetry(0);
    let (_, dirty) = contaminated_telemetry(8);
    let fit = |store: &TelemetryStore| {
        let monitor = PerformanceMonitor::new(store);
        WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
            .expect("fits")
    };
    let clean_engine = fit(&clean);
    let dirty_engine = fit(&dirty);
    // The latency model's slope must barely move despite 8% of rows
    // carrying 40x-latency garbage.
    for clean_g in clean_engine.groups() {
        let dirty_g = dirty_engine.group(clean_g.group).expect("same groups");
        let c = clean_g.f_util_to_latency.slope();
        let d = dirty_g.f_util_to_latency.slope();
        assert!(
            (c - d).abs() < c.abs().max(1.0) * 0.6 + 1.0,
            "group {:?}: clean slope {c}, dirty slope {d}",
            clean_g.group
        );
    }
}

#[test]
fn ols_models_do_not_survive_contamination() {
    // The counterpart that justifies the paper's Huber choice: OLS
    // latency intercepts blow up under the same contamination.
    let (_, clean) = contaminated_telemetry(0);
    let (_, dirty) = contaminated_telemetry(8);
    let intercept_sum = |store: &TelemetryStore, method| {
        let monitor = PerformanceMonitor::new(store);
        WhatIfEngine::fit_at(&monitor, method, Granularity::Hourly, 24)
            .expect("fits")
            .groups()
            .map(|g| g.f_util_to_latency.intercept().abs())
            .sum::<f64>()
    };
    let ols_drift = (intercept_sum(&dirty, FitMethod::Ols)
        - intercept_sum(&clean, FitMethod::Ols))
    .abs();
    let huber_drift = (intercept_sum(&dirty, FitMethod::Huber)
        - intercept_sum(&clean, FitMethod::Huber))
    .abs();
    assert!(
        huber_drift < ols_drift,
        "huber drift {huber_drift} must be below OLS drift {ols_drift}"
    );
}

#[test]
fn empty_windows_error_loudly() {
    let (cluster, store) = contaminated_telemetry(0);
    let machines: BTreeSet<_> = cluster.machines.iter().take(4).map(|m| m.id).collect();
    let split = MachineSplit {
        control: machines.clone(),
        treatment: machines,
    };
    // A window after the end of telemetry must be a typed error, not a
    // silent zero-effect.
    let res = analyze(&store, &split, 500, 600, Metric::TotalDataRead);
    assert!(matches!(res, Err(KeaError::NoObservations { .. })));
}

#[test]
fn missing_groups_error_loudly() {
    let (_, store) = contaminated_telemetry(0);
    let monitor = PerformanceMonitor::new(&store);
    let engine = WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24)
        .expect("fits");
    let bogus = GroupKey::new(kea_telemetry::SkuId(99), kea_telemetry::ScId(1));
    assert!(matches!(
        engine.predict(bogus, 10.0),
        Err(KeaError::NoObservations { .. })
    ));
}

#[test]
fn whatif_refuses_to_fit_on_starved_telemetry() {
    // One hour of data cannot support hourly models with min_rows = 24.
    let cluster = ClusterSpec::tiny();
    let out = run(&SimConfig::baseline(cluster, 1, 991));
    let monitor = PerformanceMonitor::new(&out.telemetry);
    assert!(matches!(
        WhatIfEngine::fit_at(&monitor, FitMethod::Huber, Granularity::Hourly, 24),
        Err(KeaError::NoObservations { .. })
    ));
}
