//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the exact slice of `rand` it consumes:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ seeded through SplitMix64 rather than ChaCha12; the
//!   workspace only relies on determinism-given-seed and uniformity, not
//!   on the specific stream).
//! * [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over half-open integer and float ranges
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates)
//!
//! Anything outside this subset is deliberately absent: additions should
//! be made only when a caller actually needs them, keeping the stub
//! auditable.

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator interface (the subset the workspace calls).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range, like `rand 0.8`'s
    /// `gen_range(lo..hi)`.
    ///
    /// # Panics
    /// Panics on an empty range, matching `rand`'s contract.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types that can produce a uniform sample from themselves (ranges).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample using `rng`.
    fn sample_from<C: RngCore + ?Sized>(self, rng: &mut C) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<C: RngCore + ?Sized>(self, rng: &mut C) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits → u ∈ [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; nudge back
        // inside the half-open interval.
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<C: RngCore + ?Sized>(self, rng: &mut C) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the naive approach is avoided and no
                // rejection loop is needed for test workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u16, u32, u64, usize, i32, i64);

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++ with SplitMix64
    /// seed expansion. Statistically solid for simulation/test use; not
    /// cryptographic (neither was the real `StdRng` contractually).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (subset: `shuffle`).

    use super::Rng;

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 60) == b.gen_range(0u64..1 << 60))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn float_range_is_half_open_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen_range(2.0..4.0f64);
            assert!((2.0..4.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5usize..5);
    }
}
