//! Offline stand-in for `criterion` (API subset).
//!
//! The build environment has no network access, so the workspace vendors
//! a small wall-clock benchmark harness exposing the criterion 0.5 calls
//! its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Methodology: each benchmark is warmed up, then timed over
//! `sample_size` samples (default 60). Each sample runs enough
//! iterations to last roughly [`Criterion::TARGET_SAMPLE_TIME`], and the
//! reported triple is `[min median max]` of the per-iteration sample
//! means, printed in criterion's familiar format. There is no outlier
//! analysis or plotting.
//!
//! Persistence: when the `KEA_BENCH_JSON` environment variable names a
//! file, every benchmark that completes in the process appends its
//! `[min median max]` triple (seconds, per iteration) to that file as
//! JSON — the whole file is rewritten after each benchmark, so a
//! partially-completed run still leaves valid JSON behind. CI uses this
//! to upload `BENCH_simplex.json` as a perf-trajectory artifact.
//!
//! Baselines: when `KEA_BENCH_BASELINE` names a previously-committed
//! `BENCH_*.json` file (the format this harness writes), each benchmark
//! that also appears in the baseline gets a `change:` line comparing
//! medians, with `REGRESSION` appended past +25% so CI can grep for it
//! without failing the build.

use std::hint::black_box as std_black_box;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Benchmarks completed so far in this process, for `KEA_BENCH_JSON`.
static COMPLETED: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

struct BenchRecord {
    name: String,
    min_s: f64,
    median_s: f64,
    max_s: f64,
}

/// Minimal JSON string escaping (bench names are code-controlled ASCII,
/// but quotes/backslashes must not corrupt the file).
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Records one finished benchmark and, if `KEA_BENCH_JSON` is set,
/// rewrites that file with every record seen so far. IO failures are
/// reported to stderr and never panic — persistence is best-effort.
fn persist(name: &str, min_s: f64, median_s: f64, max_s: f64) {
    let Ok(path) = std::env::var("KEA_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Ok(mut completed) = COMPLETED.lock() else {
        return;
    };
    completed.push(BenchRecord {
        name: name.to_string(),
        min_s,
        median_s,
        max_s,
    });
    let mut json = String::from("{\n  \"unit\": \"seconds_per_iteration\",\n  \"benches\": [\n");
    for (i, r) in completed.iter().enumerate() {
        let sep = if i + 1 == completed.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"min\": {:e}, \"median\": {:e}, \"max\": {:e}}}{sep}\n",
            escape_json(&r.name),
            r.min_s,
            r.median_s,
            r.max_s
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("criterion stand-in: could not write {path}: {e}");
    }
}

/// Median seconds-per-iteration for each bench name in the baseline file
/// named by `KEA_BENCH_BASELINE`, loaded once per process. Missing or
/// malformed baselines degrade to "no baseline" — never an error.
fn baseline() -> &'static [(String, f64)] {
    static BASELINE: OnceLock<Vec<(String, f64)>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let Ok(path) = std::env::var("KEA_BENCH_BASELINE") else {
            return Vec::new();
        };
        if path.is_empty() {
            return Vec::new();
        }
        match std::fs::read_to_string(&path) {
            Ok(body) => parse_baseline(&body),
            Err(e) => {
                eprintln!("criterion stand-in: could not read baseline {path}: {e}");
                Vec::new()
            }
        }
    })
}

/// Extracts `(name, median)` pairs from the JSON this harness writes.
/// The writer emits one record per line, so a line-oriented scan is
/// exact for our own files and safely skips anything else.
fn parse_baseline(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let mut name = String::new();
        let mut chars = rest.chars();
        while let Some(c) = chars.next() {
            match c {
                '"' => break,
                '\\' => match chars.next() {
                    Some('n') => name.push('\n'),
                    Some(e) => name.push(e),
                    None => break,
                },
                c => name.push(c),
            }
        }
        let Some(median_at) = line.find("\"median\": ") else {
            continue;
        };
        let tail = &line[median_at + 10..];
        let num: String = tail
            .chars()
            .take_while(|c| !matches!(c, ',' | '}' | ' '))
            .collect();
        if let Ok(median) = num.parse::<f64>() {
            if median.is_finite() && median > 0.0 {
                out.push((name, median));
            }
        }
    }
    out
}

/// Renders the per-bench delta line against a baseline median, flagging
/// regressions past +25% in a greppable way.
fn delta_line(median_s: f64, base_s: f64) -> String {
    let pct = (median_s - base_s) / base_s * 100.0;
    let flag = if pct > 25.0 {
        "  REGRESSION (>25% over baseline)"
    } else {
        ""
    };
    format!(
        "{:<40} change: [{pct:+.1}%] baseline: {}{flag}",
        "", // aligned under the bench name column
        format_duration(Duration::from_secs_f64(base_s))
    )
}

/// Re-export of `std::hint::black_box`; criterion exposes its own copy.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup; the stub times the routine alone
/// either way, so the variants only exist for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch in real criterion.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it repeatedly per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up / calibration pass: find the per-iteration cost so each
    // sample lasts about TARGET_SAMPLE_TIME.
    let mut calib = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size: 1,
    };
    f(&mut calib);
    let per_iter = calib
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));
    let iters_per_sample =
        (Criterion::TARGET_SAMPLE_TIME.as_secs_f64() / per_iter.as_secs_f64()).ceil() as u64;
    let iters_per_sample = iters_per_sample.clamp(1, 1_000_000);

    let mut bencher = Bencher {
        iters_per_sample,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);

    let mut per_iteration: Vec<f64> = bencher
        .samples
        .iter()
        .map(|s| s.as_secs_f64() / iters_per_sample as f64)
        .collect();
    per_iteration.sort_by(|a, b| a.total_cmp(b));
    if per_iteration.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = Duration::from_secs_f64(per_iteration[0]);
    let median = Duration::from_secs_f64(per_iteration[per_iteration.len() / 2]);
    let max = Duration::from_secs_f64(per_iteration[per_iteration.len() - 1]);
    println!(
        "{name:<40} time:   [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
    if let Some((_, base_s)) = baseline().iter().find(|(n, _)| n == name) {
        println!("{}", delta_line(per_iteration[per_iteration.len() / 2], *base_s));
    }
    persist(
        name,
        per_iteration[0],
        per_iteration[per_iteration.len() / 2],
        per_iteration[per_iteration.len() - 1],
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 60 }
    }
}

impl Criterion {
    /// Target wall-clock duration of one timing sample.
    pub const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

    /// Runs (and reports) one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Starts a named group of benchmarks with its own sample size.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs (and reports) one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.prefix, name), self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the stub; exists for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`) to the binary;
            // the stub has no filtering, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        assert!(count > 0, "routine must have run");
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("inner", |b| {
            b.iter_batched(|| 1u64, |x| {
                runs += x;
                runs
            }, BatchSize::SmallInput)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn persists_json_when_env_is_set() {
        let path = std::env::temp_dir().join("kea_criterion_stub_probe.json");
        std::env::set_var("KEA_BENCH_JSON", &path);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("probe");
        group.sample_size(2);
        group.bench_function("json_roundtrip", |b| b.iter(|| 1u64 + 1));
        group.finish();
        std::env::remove_var("KEA_BENCH_JSON");
        let body = std::fs::read_to_string(&path).expect("bench JSON written");
        assert!(body.contains("\"probe/json_roundtrip\""), "{body}");
        assert!(body.contains("\"median\""), "{body}");
        assert!(body.trim_end().ends_with('}'), "valid JSON shape: {body}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escaping_neutralizes_quotes_and_control_chars() {
        assert_eq!(escape_json("plain/name_64"), "plain/name_64");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("tab\tchar"), "tab char");
    }

    #[test]
    fn baseline_parser_round_trips_the_writer_format() {
        let body = concat!(
            "{\n  \"unit\": \"seconds_per_iteration\",\n  \"benches\": [\n",
            "    {\"name\": \"scan/by_group\", \"min\": 1e-6, \"median\": 2.5e-6, \"max\": 4e-6},\n",
            "    {\"name\": \"odd\\\"quote\", \"min\": 1e-3, \"median\": 2e-3, \"max\": 3e-3},\n",
            "    {\"name\": \"bad_median\", \"min\": 1e-3, \"median\": oops, \"max\": 3e-3}\n",
            "  ]\n}\n"
        );
        let parsed = parse_baseline(body);
        assert_eq!(parsed.len(), 2, "{parsed:?}");
        assert_eq!(parsed[0].0, "scan/by_group");
        assert!((parsed[0].1 - 2.5e-6).abs() < 1e-15);
        assert_eq!(parsed[1].0, "odd\"quote");
    }

    #[test]
    fn delta_line_flags_only_real_regressions() {
        assert!(delta_line(1.30e-3, 1.0e-3).contains("REGRESSION"));
        assert!(delta_line(1.30e-3, 1.0e-3).contains("+30.0%"));
        assert!(!delta_line(1.10e-3, 1.0e-3).contains("REGRESSION"));
        assert!(delta_line(0.8e-3, 1.0e-3).contains("-20.0%"));
    }

    #[test]
    fn durations_format_in_sane_units() {
        assert!(format_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
