//! Offline stand-in for `proptest` (API subset).
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest its property tests actually use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`)
//! * [`strategy::Strategy`] with `prop_map`
//! * range strategies over numeric types, tuple strategies up to arity 8
//! * [`collection::vec`], [`bool::ANY`], [`arbitrary::any`], [`strategy::Just`]
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! purely random (no integrated shrinking — a failing case prints its
//! inputs but is not minimized), and `.proptest-regressions` files are
//! ignored. Each test function derives its RNG seed from its own name, so
//! runs are deterministic across processes.

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Derives a deterministic per-test seed from the test's name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h)
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v >= self.end {
                f64::from_bits(self.end.to_bits() - 1)
            } else {
                v
            }
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    /// Weighted choice between strategies that all produce the same value
    /// type, the engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms. Weights are
        /// relative; at least one arm must have a positive weight.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .field("total_weight", &self.total)
                .finish()
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            let mut chosen = None;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    chosen = Some(s);
                    break;
                }
                pick -= *w as u64;
            }
            // pick < total, so the scan always lands on an arm; the
            // fallback covers the unreachable weight-accounting slip.
            let arm = chosen.unwrap_or_else(|| {
                let Some((_, last)) = self.arms.last() else {
                    unreachable!("Union::new rejects empty arm lists")
                };
                last
            });
            arm.generate(rng)
        }
    }

    impl_strategy_tuple!(A/a);
    impl_strategy_tuple!(A/a, B/b);
    impl_strategy_tuple!(A/a, B/b, C/c);
    impl_strategy_tuple!(A/a, B/b, C/c, D/d);
    impl_strategy_tuple!(A/a, B/b, C/c, D/d, E/e);
    impl_strategy_tuple!(A/a, B/b, C/c, D/d, E/e, F/f);
    impl_strategy_tuple!(A/a, B/b, C/c, D/d, E/e, F/f, G/g);
    impl_strategy_tuple!(A/a, B/b, C/c, D/d, E/e, F/f, G/g, H/h);
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy generating uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a uniformly
    /// chosen length in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "cannot sample empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy generating arbitrary values of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration.

    /// How many random cases each property test runs, and knobs we accept
    //  for source compatibility but ignore.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prop` re-export.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expands each `#[test] fn` item into a case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} failed with inputs:",
                        case + 1,
                        config.cases
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type: `prop_oneof![3 => a, 1 => b]` draws from `a` three times as
/// often as from `b`; `prop_oneof![a, b]` weights every arm equally.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3.0..9.0f64, n in 2usize..10) {
            prop_assert!((3.0..9.0).contains(&x));
            prop_assert!((2..10).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_limits_cases(flag in prop::bool::ANY) {
            // Just exercising the config path; the strategy may only
            // produce actual booleans (no uninitialized/other bit
            // patterns from the RNG).
            prop_assert!(matches!(flag, true | false));
        }
    }

    proptest! {
        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u32..50).prop_map(|x| x * 2), 1..20),
            b in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 100));
            let _ = b;
        }
    }

    proptest! {
        #[test]
        fn oneof_draws_every_arm_and_respects_weights(
            picks in prop::collection::vec(
                prop_oneof![
                    8 => (0u32..1).prop_map(|_| "heavy"),
                    1 => (0u32..1).prop_map(|_| "light"),
                ],
                400..401,
            ),
        ) {
            let heavy = picks.iter().filter(|p| **p == "heavy").count();
            let light = picks.len() - heavy;
            prop_assert!(heavy > 0 && light > 0, "both arms must be reachable");
            prop_assert!(heavy > light, "8:1 weighting must favor the heavy arm");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
