//! Offline stand-in for `proptest` (API subset).
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest its property tests actually use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`)
//! * [`strategy::Strategy`] with `prop_map`
//! * range strategies over numeric types, tuple strategies up to arity 8
//! * [`collection::vec`], [`bool::ANY`], [`arbitrary::any`], [`strategy::Just`]
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Failing cases are **shrunk** before being reported: integer and float
//! ranges shrink toward their range start, vectors shrink toward their
//! minimum length (plus bounded element-wise shrinks), and tuples shrink
//! one component at a time — a greedy loop with a bounded budget keeps
//! re-running the property and adopts every candidate that still fails,
//! so the printed inputs are a local minimum, not the first random hit.
//! Strategies built with `prop_map`/`prop_oneof` generate fine but do
//! not shrink through the mapping (the stand-in cannot invert arbitrary
//! closures); a vector *of* mapped values still shrinks by length.
//!
//! Other deliberate differences from real proptest:
//! `.proptest-regressions` files are ignored, and each test function
//! derives its RNG seed from its own name, so runs are deterministic
//! across processes.

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Derives a deterministic per-test seed from the test's name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h)
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes strictly "smaller" variants of a failing `value`,
        /// most aggressive first. The default — no candidates — is
        /// correct for any strategy (shrinking is an optimization, not
        /// a semantic requirement); combinators that cannot invert
        /// their construction (`prop_map`, `prop_oneof`) keep it.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v >= self.end {
                f64::from_bits(self.end.to_bits() - 1)
            } else {
                v
            }
        }

        fn shrink(&self, value: &f64) -> Vec<f64> {
            let mut out = Vec::new();
            if *value != self.start {
                out.push(self.start);
                let mid = self.start + (*value - self.start) / 2.0;
                if mid != self.start && mid != *value {
                    out.push(mid);
                }
            }
            out
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *value != self.start {
                        // Toward the range start: the start itself, the
                        // midpoint (binary descent), one step down.
                        out.push(self.start);
                        let mid = (self.start as i128
                            + (*value as i128 - self.start as i128) / 2)
                            as $t;
                        if mid != self.start && mid != *value {
                            out.push(mid);
                        }
                        let dec = (*value as i128 - 1) as $t;
                        if dec != self.start && dec != mid {
                            out.push(dec);
                        }
                    }
                    out
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }

                /// Component-wise: each candidate replaces exactly one
                /// position with one of that component's shrinks and
                /// clones the rest.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }

    /// Weighted choice between strategies that all produce the same value
    /// type, the engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms. Weights are
        /// relative; at least one arm must have a positive weight.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .field("total_weight", &self.total)
                .finish()
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            let mut chosen = None;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    chosen = Some(s);
                    break;
                }
                pick -= *w as u64;
            }
            // pick < total, so the scan always lands on an arm; the
            // fallback covers the unreachable weight-accounting slip.
            let arm = chosen.unwrap_or_else(|| {
                let Some((_, last)) = self.arms.last() else {
                    unreachable!("Union::new rejects empty arm lists")
                };
                last
            });
            arm.generate(rng)
        }
    }

    impl_strategy_tuple!(A/0);
    impl_strategy_tuple!(A/0, B/1);
    impl_strategy_tuple!(A/0, B/1, C/2);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11, M/12);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11, M/12, N/13);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11, M/12, N/13, O/14);
    impl_strategy_tuple!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11, M/12, N/13, O/14, P/15);
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy generating uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }

        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a uniformly
    /// chosen length in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "cannot sample empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        /// Length reduction first (jump to the minimum, then binary
        /// descent, then drop-one), then bounded element-wise shrinks:
        /// the first few positions each propose a few candidates from
        /// the element strategy, keeping the candidate list small even
        /// for long vectors.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.len.start;
            let n = value.len();
            if n > min {
                out.push(value[..min].to_vec());
                let half = min + (n - min) / 2;
                if half > min && half < n {
                    out.push(value[..half].to_vec());
                }
                if n - 1 > min {
                    out.push(value[..n - 1].to_vec());
                }
                // Drop one interior element at a time (bounded).
                for i in 0..n.min(8) {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            for (i, elem) in value.iter().enumerate().take(4) {
                for cand in self.element.shrink(elem).into_iter().take(4) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Proposes smaller variants of `self` for shrinking; empty by
        /// default.
        fn shrink_value(&self) -> Vec<Self> {
            Vec::new()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }

        fn shrink_value(&self) -> Vec<bool> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }

                fn shrink_value(&self) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *self != 0 {
                        out.push(0);
                        let half = *self / 2;
                        if half != 0 && half != *self {
                            out.push(half);
                        }
                    }
                    out
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy generating arbitrary values of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink_value()
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration.

    /// How many random cases each property test runs, and knobs we accept
    //  for source compatibility but ignore.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prop` re-export.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expands each `#[test] fn` item into a case loop with
/// greedy shrinking on failure.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            // All argument strategies as one tuple strategy, so shrinking
            // can vary one argument at a time through the tuple impl.
            let __strategies = ($($strat,)+);
            // Pins the closure parameter below to the tuple's value type;
            // without it, method calls on the arguments inside the body
            // hit unresolved-inference errors.
            fn __pin<S: $crate::strategy::Strategy>(_s: &S, v: S::Value) -> S::Value {
                v
            }
            for case in 0..config.cases {
                let __case_val =
                    $crate::strategy::Strategy::generate(&__strategies, &mut rng);
                let __run = |__vals| {
                    let ($($arg,)+) = __pin(&__strategies, __vals);
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        // Inner closure so `return;` inside the body exits
                        // only this case.
                        let __case_body = || { $body };
                        __case_body()
                    }))
                    .is_ok()
                };
                if __run(::std::clone::Clone::clone(&__case_val)) {
                    continue;
                }
                // Shrink: repeatedly adopt the first candidate that still
                // fails, silencing panic output while probing.
                let mut __best = __case_val;
                let __prev_hook = ::std::panic::take_hook();
                ::std::panic::set_hook(::std::boxed::Box::new(|_| {}));
                let mut __budget: u32 = 512;
                'shrinking: loop {
                    let mut __progressed = false;
                    for __cand in
                        $crate::strategy::Strategy::shrink(&__strategies, &__best)
                    {
                        if __budget == 0 {
                            break 'shrinking;
                        }
                        __budget -= 1;
                        if !__run(::std::clone::Clone::clone(&__cand)) {
                            __best = __cand;
                            __progressed = true;
                            break;
                        }
                    }
                    if !__progressed {
                        break;
                    }
                }
                ::std::panic::set_hook(__prev_hook);
                eprintln!(
                    "proptest case {}/{} failed; minimized inputs:",
                    case + 1,
                    config.cases
                );
                {
                    let ($(ref $arg,)+) = __best;
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                }
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ($($arg,)+) = __best;
                    let __case_body = || { $body };
                    __case_body()
                }));
                match __result {
                    Err(panic) => ::std::panic::resume_unwind(panic),
                    Ok(()) => panic!(
                        "proptest: shrunk case passed on re-run (non-deterministic test body?)"
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type: `prop_oneof![3 => a, 1 => b]` draws from `a` three times as
/// often as from `b`; `prop_oneof![a, b]` weights every arm equally.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3.0..9.0f64, n in 2usize..10) {
            prop_assert!((3.0..9.0).contains(&x));
            prop_assert!((2..10).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_limits_cases(flag in prop::bool::ANY) {
            // Just exercising the config path; the strategy may only
            // produce actual booleans (no uninitialized/other bit
            // patterns from the RNG).
            prop_assert!(matches!(flag, true | false));
        }
    }

    proptest! {
        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u32..50).prop_map(|x| x * 2), 1..20),
            b in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 100));
            let _ = b;
        }
    }

    proptest! {
        #[test]
        fn oneof_draws_every_arm_and_respects_weights(
            picks in prop::collection::vec(
                prop_oneof![
                    8 => (0u32..1).prop_map(|_| "heavy"),
                    1 => (0u32..1).prop_map(|_| "light"),
                ],
                400..401,
            ),
        ) {
            let heavy = picks.iter().filter(|p| **p == "heavy").count();
            let light = picks.len() - heavy;
            prop_assert!(heavy > 0 && light > 0, "both arms must be reachable");
            prop_assert!(heavy > light, "8:1 weighting must favor the heavy arm");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_range_shrinks_toward_start() {
        let s = 10u64..100;
        let cands = s.shrink(&80);
        assert!(cands.contains(&10), "must propose the range start: {cands:?}");
        assert!(cands.iter().all(|&c| (10..80).contains(&c)), "{cands:?}");
        assert!(s.shrink(&10).is_empty(), "the start itself has no shrinks");
    }

    #[test]
    fn vec_shrinks_toward_min_length() {
        let s = prop::collection::vec(0u32..50, 2..10);
        let v: Vec<u32> = vec![9, 8, 7, 6, 5];
        let cands = s.shrink(&v);
        assert!(cands.contains(&vec![9, 8]), "must jump to min length: {cands:?}");
        assert!(cands.iter().all(|c| c.len() >= 2), "{cands:?}");
        // Element-wise candidates keep the length but lower a value.
        assert!(
            cands.iter().any(|c| c.len() == v.len() && c != &v),
            "{cands:?}"
        );
        assert!(s.shrink(&vec![0u32, 0]).is_empty(), "fully minimal already");
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (0u32..100, 0u64..100);
        let cands = s.shrink(&(40u32, 60u64));
        assert!(!cands.is_empty());
        for (a, b) in &cands {
            let first_changed = *a != 40;
            let second_changed = *b != 60;
            assert!(first_changed != second_changed, "exactly one side moves");
        }
        assert!(cands.contains(&(0u32, 60u64)));
        assert!(cands.contains(&(40u32, 0u64)));
    }

    #[test]
    fn bool_and_any_shrink_toward_zero() {
        assert_eq!(crate::bool::ANY.shrink(&true), vec![false]);
        assert!(crate::bool::ANY.shrink(&false).is_empty());
        let s = any::<u64>();
        let cands = s.shrink(&64);
        assert!(cands.contains(&0) && cands.contains(&32), "{cands:?}");
        assert!(s.shrink(&0).is_empty());
    }

    #[test]
    fn failing_case_is_minimized_before_reporting() {
        // Drive the macro's shrink loop directly: a property failing for
        // any vec containing a value >= 7 must minimize to the shortest
        // vec holding the smallest still-failing value.
        let s = prop::collection::vec(0u32..100, 1..20);
        let fails = |v: &Vec<u32>| v.iter().any(|&x| x >= 7);
        let mut best: Vec<u32> = vec![55, 3, 91, 7, 12, 44];
        assert!(fails(&best));
        let mut budget = 512;
        'shrinking: loop {
            let mut progressed = false;
            for cand in s.shrink(&best) {
                if budget == 0 {
                    break 'shrinking;
                }
                budget -= 1;
                if fails(&cand) {
                    best = cand;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(fails(&best), "shrinking must preserve failure");
        assert!(best.len() <= 2, "greedy shrink should drop passing elements: {best:?}");
        assert!(best.iter().all(|&x| x < 15), "values should descend: {best:?}");
    }
}
